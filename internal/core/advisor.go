package core

import (
	"errors"
	"fmt"
	"sort"
)

// Ranking scores one scheme on a workload.
type Ranking struct {
	// Scheme is the ranked scheme.
	Scheme Scheme
	// Power is its processing power.
	Power float64
	// Efficiency is Power relative to the Base scheme on the same
	// hardware (1.0 = no coherence overhead).
	Efficiency float64
}

// RankBus evaluates every candidate scheme on an nproc-processor bus and
// returns them sorted by descending power. Candidates that cannot run on
// the given cost table are skipped (e.g. Dragon on network costs); it is
// an error if none survive.
func RankBus(candidates []Scheme, p Params, costs *CostTable, nproc int) ([]Ranking, error) {
	return RankBusWith(Direct(), candidates, p, costs, nproc)
}

// RankBusWith is RankBus with the power solves routed through ev, so
// repeated advisor queries hit a memoizing evaluator instead of re-solving.
func RankBusWith(ev PowerEvaluator, candidates []Scheme, p Params, costs *CostTable, nproc int) ([]Ranking, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: no candidate schemes")
	}
	base, err := ev.BusPower(Base{}, p, costs, nproc)
	if err != nil {
		return nil, err
	}
	var out []Ranking
	for _, s := range candidates {
		pw, err := ev.BusPower(s, p, costs, nproc)
		if err != nil {
			if isUnsupported(err) {
				continue
			}
			return nil, err
		}
		r := Ranking{Scheme: s, Power: pw}
		if base > 0 {
			r.Efficiency = pw / base
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no candidate runs on %s", ErrUnsupported, costs.Name)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Power > out[j].Power })
	return out, nil
}

// RankNetwork does the same for a 2^stages-processor circuit-switched
// network; bus-only schemes are skipped.
func RankNetwork(candidates []Scheme, p Params, stages int) ([]Ranking, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: no candidate schemes")
	}
	basePt, err := EvaluateNetworkAt(Base{}, p, stages)
	if err != nil {
		return nil, err
	}
	var out []Ranking
	for _, s := range candidates {
		pt, err := EvaluateNetworkAt(s, p, stages)
		if err != nil {
			if isUnsupported(err) {
				continue
			}
			return nil, err
		}
		r := Ranking{Scheme: s, Power: pt.Power}
		if basePt.Power > 0 {
			r.Efficiency = pt.Power / basePt.Power
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no candidate runs on a network", ErrUnsupported)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Power > out[j].Power })
	return out, nil
}

// Recommend returns the highest-power implementable coherence scheme
// (excluding the unimplementable Base reference) for the workload, on a
// bus when stages == 0 or on a 2^stages network otherwise.
//
// This is the library's "which scheme should I build?" entry point; the
// candidates are the paper's implementable schemes plus the extensions.
func Recommend(p Params, nproc, stages int) (Ranking, error) {
	return RecommendWith(Direct(), p, nproc, stages)
}

// RecommendWith is Recommend with bus power solves routed through ev
// (network rankings always solve fresh: their Patel fixed point has no
// cached form yet).
func RecommendWith(ev PowerEvaluator, p Params, nproc, stages int) (Ranking, error) {
	candidates := DefaultCandidates()
	var ranked []Ranking
	var err error
	if stages == 0 {
		ranked, err = RankBusWith(ev, candidates, p, BusCosts(), nproc)
	} else {
		ranked, err = RankNetwork(candidates, p, stages)
	}
	if err != nil {
		return Ranking{}, err
	}
	return ranked[0], nil
}

func isUnsupported(err error) bool { return errors.Is(err, ErrUnsupported) }
