// Package core implements the analytical cache-coherence performance model
// of Owicki & Agarwal, "Evaluating the Performance of Software Cache
// Coherence" (ASPLOS 1989).
//
// The model composes three parts:
//
//   - A system model (CostTable): CPU and bus/network cycle counts for each
//     hardware operation — paper Table 1 for buses, Table 9 for a
//     circuit-switched multistage network.
//   - A workload model (Scheme.Frequencies): per-instruction frequencies of
//     those operations as functions of eleven workload parameters (Params,
//     paper Table 2), with one Scheme per coherence mechanism — Base,
//     No-Cache, Software-Flush, Dragon (paper Tables 3-6).
//   - A contention model: exact MVA for the shared bus (EvaluateBus) and
//     Patel's fixed point for the multistage network (EvaluateNetwork).
//
// From frequencies and costs the model derives c, the mean CPU cycles per
// instruction, and b, the mean bus (or network) cycles per instruction
// (paper equations 1-2). Bus transactions then arrive once every c-b
// cycles with mean service b; contention adds w waiting cycles, processor
// utilization is U = 1/(c+w), and an n-processor machine delivers
// processing power n*U.
package core
