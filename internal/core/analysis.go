package core

import (
	"fmt"
	"math"
)

// Analysis helpers: design-space questions the paper's discussion raises
// ("how good must the compiler's flush placement be?", "how much sharing
// can a software scheme afford?") answered by inverting the model.

// PowerEvaluator computes bus processing power. The analysis and advisor
// entry points accept one so callers can route the many BusPower solves
// inside their bisections and rankings through a memoizing evaluator
// (internal/sweep) instead of solving fresh every time.
type PowerEvaluator interface {
	// BusPower returns the bus processing power (n*U) of scheme s on
	// workload p under costs at exactly nproc processors.
	BusPower(s Scheme, p Params, costs *CostTable, nproc int) (float64, error)
}

// directEvaluator solves fresh on every call.
type directEvaluator struct{}

// BusPower implements PowerEvaluator with a fresh, uncached solve.
func (directEvaluator) BusPower(s Scheme, p Params, costs *CostTable, nproc int) (float64, error) {
	return BusPower(s, p, costs, nproc)
}

// Direct returns the uncached PowerEvaluator: every BusPower call runs a
// full ComputeDemand + MVA solve.
func Direct() PowerEvaluator { return directEvaluator{} }

// APLToMatch returns the smallest apl at which Software-Flush's
// processing power reaches the target scheme's power, at the given
// workload and machine size. found is false when even an arbitrarily
// large apl (no flush overhead at all) cannot reach the target — e.g.
// Software-Flush can never beat Base.
//
// Software-Flush power is non-decreasing in apl, so a bisection on
// [1, aplMax] is exact to the returned tolerance.
func APLToMatch(target Scheme, p Params, costs *CostTable, nproc int) (apl float64, found bool, err error) {
	return APLToMatchWith(Direct(), target, p, costs, nproc)
}

// APLToMatchWith is APLToMatch with the power solves routed through ev.
func APLToMatchWith(ev PowerEvaluator, target Scheme, p Params, costs *CostTable, nproc int) (apl float64, found bool, err error) {
	if nproc < 1 {
		return 0, false, fmt.Errorf("core: nproc %d < 1", nproc)
	}
	goal, err := ev.BusPower(target, p, costs, nproc)
	if err != nil {
		return 0, false, err
	}
	powerAt := func(apl float64) (float64, error) {
		q, err := p.With("apl", apl)
		if err != nil {
			return 0, err
		}
		return ev.BusPower(SoftwareFlush{}, q, costs, nproc)
	}
	const aplMax = 1e9
	top, err := powerAt(aplMax)
	if err != nil {
		return 0, false, err
	}
	if top < goal {
		return math.Inf(1), false, nil
	}
	bottom, err := powerAt(1)
	if err != nil {
		return 0, false, err
	}
	if bottom >= goal {
		return 1, true, nil
	}
	lo, hi := 1.0, aplMax
	for i := 0; i < 100 && hi-lo > 1e-6*hi; i++ {
		mid := math.Sqrt(lo * hi) // geometric bisection: apl spans decades
		pw, err := powerAt(mid)
		if err != nil {
			return 0, false, err
		}
		if pw >= goal {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// MaxShdForPower returns the largest shared fraction shd at which the
// scheme still delivers at least minPower at nproc processors (all other
// parameters as given). found is false if even shd = 0 cannot reach
// minPower.
//
// The bisection assumes power is non-increasing in shd. That holds for
// Base, No-Cache, Dragon, and Directory unconditionally; for
// Software-Flush it can fail when apl is high and msdat is high
// (flush-managed data then misses *less* than unshared data — see
// TestSoftwareFlushSharingCanPay), in which case the returned budget is
// a conservative feasible point rather than the exact supremum.
func MaxShdForPower(s Scheme, p Params, costs *CostTable, nproc int, minPower float64) (shd float64, found bool, err error) {
	return MaxShdForPowerWith(Direct(), s, p, costs, nproc, minPower)
}

// MaxShdForPowerWith is MaxShdForPower with the power solves routed
// through ev.
func MaxShdForPowerWith(ev PowerEvaluator, s Scheme, p Params, costs *CostTable, nproc int, minPower float64) (shd float64, found bool, err error) {
	if nproc < 1 {
		return 0, false, fmt.Errorf("core: nproc %d < 1", nproc)
	}
	powerAt := func(shd float64) (float64, error) {
		q, err := p.With("shd", shd)
		if err != nil {
			return 0, err
		}
		return ev.BusPower(s, q, costs, nproc)
	}
	atZero, err := powerAt(0)
	if err != nil {
		return 0, false, err
	}
	if atZero < minPower {
		return 0, false, nil
	}
	atOne, err := powerAt(1)
	if err != nil {
		return 0, false, err
	}
	if atOne >= minPower {
		return 1, true, nil
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		pw, err := powerAt(mid)
		if err != nil {
			return 0, false, err
		}
		if pw >= minPower {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true, nil
}

// EfficiencyVsBase returns the scheme's power as a fraction of the Base
// scheme's at the same workload and machine size: the coherence overhead
// expressed as lost processing power.
func EfficiencyVsBase(s Scheme, p Params, costs *CostTable, nproc int) (float64, error) {
	return EfficiencyVsBaseWith(Direct(), s, p, costs, nproc)
}

// EfficiencyVsBaseWith is EfficiencyVsBase with the power solves routed
// through ev.
func EfficiencyVsBaseWith(ev PowerEvaluator, s Scheme, p Params, costs *CostTable, nproc int) (float64, error) {
	base, err := ev.BusPower(Base{}, p, costs, nproc)
	if err != nil {
		return 0, err
	}
	pw, err := ev.BusPower(s, p, costs, nproc)
	if err != nil {
		return 0, err
	}
	if base == 0 {
		return 0, fmt.Errorf("core: base power is zero")
	}
	return pw / base, nil
}
