package core

import (
	"strings"
	"testing"
)

func TestBusCostsMatchTable1(t *testing.T) {
	want := map[Op]Cost{
		OpInstr:          {1, 0},
		OpCleanMissMem:   {10, 7},
		OpDirtyMissMem:   {14, 11},
		OpReadThrough:    {5, 4},
		OpWriteThrough:   {2, 1},
		OpCleanFlush:     {1, 0},
		OpDirtyFlush:     {6, 4},
		OpWriteBroadcast: {2, 1},
		OpCleanMissCache: {9, 6},
		OpDirtyMissCache: {13, 10},
		OpCycleSteal:     {1, 0},
	}
	bus := BusCosts()
	for op, w := range want {
		got := bus.Cost(op)
		if got != w {
			t.Errorf("%v: got %+v, want %+v", op, got, w)
		}
		if !bus.Defines(op) {
			t.Errorf("%v: bus table should define it", op)
		}
	}
}

func TestNetworkCostsMatchTable9(t *testing.T) {
	for _, stages := range []int{1, 4, 8, 10} {
		n := float64(stages)
		want := map[Op]Cost{
			OpInstr:        {1, 0},
			OpCleanMissMem: {9 + 2*n, 6 + 2*n},
			OpDirtyMissMem: {12 + 2*n, 9 + 2*n},
			OpCleanFlush:   {1, 0},
			OpDirtyFlush:   {7 + 2*n, 5 + 2*n},
			OpWriteThrough: {3 + 2*n, 2 + 2*n},
			OpReadThrough:  {4 + 2*n, 3 + 2*n},
		}
		tab := NetworkCosts(stages)
		for op, w := range want {
			if got := tab.Cost(op); got != w {
				t.Errorf("stages=%d %v: got %+v, want %+v", stages, op, got, w)
			}
		}
		for _, op := range []Op{OpWriteBroadcast, OpCleanMissCache, OpDirtyMissCache, OpCycleSteal} {
			if tab.Defines(op) {
				t.Errorf("stages=%d: network table must not define bus-only op %v", stages, op)
			}
		}
	}
}

func TestCostTableInterconnectNeverExceedsCPU(t *testing.T) {
	tables := []*CostTable{BusCosts(), NetworkCosts(1), NetworkCosts(8)}
	for _, tab := range tables {
		for _, op := range Ops() {
			c := tab.Cost(op)
			if c.Interconnect > c.CPU {
				t.Errorf("%s %v: interconnect %g > cpu %g", tab.Name, op, c.Interconnect, c.CPU)
			}
		}
	}
}

func TestOpString(t *testing.T) {
	if OpCleanMissMem.String() != "clean miss (mem)" {
		t.Errorf("got %q", OpCleanMissMem.String())
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Errorf("out-of-range op should mention its value, got %q", Op(99).String())
	}
	seen := map[string]bool{}
	for _, op := range Ops() {
		s := op.String()
		if seen[s] {
			t.Errorf("duplicate op name %q", s)
		}
		seen[s] = true
	}
}

func TestCostOutOfRangeOp(t *testing.T) {
	bus := BusCosts()
	if bus.Cost(Op(-1)) != (Cost{}) || bus.Cost(numOps) != (Cost{}) {
		t.Error("out-of-range ops must cost zero")
	}
	if bus.Defines(Op(-1)) || bus.Defines(numOps) {
		t.Error("out-of-range ops must not be defined")
	}
}
