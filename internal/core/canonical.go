package core

// ParamsUser is optionally implemented by schemes to declare which
// workload parameters (by Table 2 name) affect their Frequencies. The
// declaration lets memoization layers canonicalize a Params before using
// it as a cache key: two workloads that differ only in parameters a
// scheme ignores then share one cache entry. A wrong declaration would
// produce wrong cache hits, so TestParamsUsedComplete exercises every
// declared scheme against every undeclared field.
type ParamsUser interface {
	// ParamsUsed returns the Table 2 names of the parameters that
	// influence Frequencies.
	ParamsUsed() []string
}

// CanonicalParams maps p to a canonical representative of its equivalence
// class under s: parameters the scheme declares unused are reset to a
// fixed baseline, parameters it uses are copied through. Schemes that do
// not implement ParamsUser canonicalize to p itself (every field
// significant). The result is only suitable as a cache key — evaluate
// demands with the original p, which carries the full validation state.
func CanonicalParams(s Scheme, p Params) Params {
	u, ok := s.(ParamsUser)
	if !ok {
		return p
	}
	out := Params{APL: 1} // baseline: zero everywhere, minimum legal apl
	for _, name := range u.ParamsUsed() {
		f, err := FieldByName(name)
		if err != nil {
			return p // unknown declaration: fail safe, no collapsing
		}
		f.Set(&out, f.Get(&p))
	}
	return out
}

// ParamsUsed implements ParamsUser: Base misses depend only on the
// reference mix and miss rates (Table 3).
func (Base) ParamsUsed() []string { return []string{"ls", "msdat", "mains", "md"} }

// ParamsUsed implements ParamsUser (Table 4: shared references bypass the
// cache, split by wr).
func (NoCache) ParamsUsed() []string {
	return []string{"ls", "msdat", "mains", "md", "shd", "wr"}
}

// ParamsUsed implements ParamsUser (Table 5: flush rate ls*shd/apl, dirty
// flushes with probability mdshd; wr does not appear).
func (SoftwareFlush) ParamsUsed() []string {
	return []string{"ls", "msdat", "mains", "md", "shd", "apl", "mdshd"}
}

// ParamsUsed implements ParamsUser (Table 6: Dragon reacts to the sharing
// parameters but ignores apl and mdshd, which are flush artifacts).
func (Dragon) ParamsUsed() []string {
	return []string{"ls", "msdat", "mains", "md", "shd", "wr", "oclean", "opres", "nshd"}
}

// ParamsUsed implements ParamsUser (extension scheme: invalidation
// traffic scales with shd*wr*opres).
func (Directory) ParamsUsed() []string {
	return []string{"ls", "msdat", "mains", "md", "shd", "wr", "opres"}
}

// ParamsUsed implements ParamsUser: the hybrid combines the No-Cache and
// Software-Flush parameter sets.
func (Hybrid) ParamsUsed() []string {
	return []string{"ls", "msdat", "mains", "md", "shd", "wr", "apl", "mdshd"}
}
