package core

// ParamsUser is optionally implemented by schemes to declare which
// workload parameters (by Table 2 name) affect their Frequencies. The
// declaration lets memoization layers canonicalize a Params before using
// it as a cache key: two workloads that differ only in parameters a
// scheme ignores then share one cache entry. A wrong declaration would
// produce wrong cache hits, so TestParamsUsedComplete exercises every
// declared scheme against every undeclared field.
type ParamsUser interface {
	// ParamsUsed returns the Table 2 names of the parameters that
	// influence Frequencies.
	ParamsUsed() []string
}

// fieldMask is a bitmask over the Table 7 parameter list in fieldSpecs
// order: bit i set means fieldSpecs[i] influences a scheme's demand. It
// exists so canonicalization — which sits on every cache lookup — runs
// as straight field copies instead of name lookups and accessor
// closures, keeping the hot path allocation-free.
type fieldMask uint16

// fieldMasker is implemented by the built-in schemes to expose their
// ParamsUsed declaration as a precomputed fieldMask. CanonicalParams
// prefers it over re-deriving the mask from the name list on every call.
type fieldMasker interface {
	fieldMask() fieldMask
}

// maskOf derives a fieldMask from a ParamsUsed name list. The second
// return is false when a name is unknown (a wrong declaration), in which
// case callers must fail safe and not collapse anything.
func maskOf(names []string) (fieldMask, bool) {
	var m fieldMask
	for _, name := range names {
		i, ok := fieldIndex[name]
		if !ok {
			return 0, false
		}
		m |= 1 << i
	}
	return m, true
}

// mustMask is maskOf for the package's own declarations, which are
// validated against fieldSpecs at init.
func mustMask(names []string) fieldMask {
	m, ok := maskOf(names)
	if !ok {
		panic("core: ParamsUsed declaration names an unknown parameter")
	}
	return m
}

// canonical maps p onto the representative of its equivalence class
// under m: masked-in fields copy through, everything else resets to the
// fixed baseline (zero everywhere, minimum legal apl). The bit positions
// are fieldSpecs order; TestFieldMaskMatchesFieldOrder pins the
// correspondence.
func (p Params) canonical(m fieldMask) Params {
	out := Params{APL: 1}
	if m&(1<<0) != 0 {
		out.LS = p.LS
	}
	if m&(1<<1) != 0 {
		out.MsDat = p.MsDat
	}
	if m&(1<<2) != 0 {
		out.MsIns = p.MsIns
	}
	if m&(1<<3) != 0 {
		out.MD = p.MD
	}
	if m&(1<<4) != 0 {
		out.Shd = p.Shd
	}
	if m&(1<<5) != 0 {
		out.WR = p.WR
	}
	if m&(1<<6) != 0 {
		out.MdShd = p.MdShd
	}
	if m&(1<<7) != 0 {
		out.APL = p.APL
	}
	if m&(1<<8) != 0 {
		out.OClean = p.OClean
	}
	if m&(1<<9) != 0 {
		out.OPres = p.OPres
	}
	if m&(1<<10) != 0 {
		out.NShd = p.NShd
	}
	return out
}

// CanonicalParams maps p to a canonical representative of its equivalence
// class under s: parameters the scheme declares unused are reset to a
// fixed baseline, parameters it uses are copied through. Schemes that do
// not implement ParamsUser canonicalize to p itself (every field
// significant). The result is only suitable as a cache key — evaluate
// demands with the original p, which carries the full validation state.
//
// The built-in schemes take an allocation-free path through their
// precomputed fieldMask; other ParamsUser implementations pay a map
// lookup per declared name but still allocate nothing.
func CanonicalParams(s Scheme, p Params) Params {
	if fm, ok := s.(fieldMasker); ok {
		return p.canonical(fm.fieldMask())
	}
	u, ok := s.(ParamsUser)
	if !ok {
		return p
	}
	m, ok := maskOf(u.ParamsUsed())
	if !ok {
		return p // unknown declaration: fail safe, no collapsing
	}
	return p.canonical(m)
}

// The ParamsUsed declarations are shared package-level slices (callers
// must treat them as read-only): ParamsUsed is consulted on cache-key
// canonicalization paths, so returning a fresh literal per call would
// put an allocation on every lookup. Each scheme's fieldMask is derived
// from the same list at init, so the two can never drift.
var (
	baseUsed         = []string{"ls", "msdat", "mains", "md"}
	noCacheUsed      = []string{"ls", "msdat", "mains", "md", "shd", "wr"}
	swFlushUsed      = []string{"ls", "msdat", "mains", "md", "shd", "apl", "mdshd"}
	dragonUsed       = []string{"ls", "msdat", "mains", "md", "shd", "wr", "oclean", "opres", "nshd"}
	dirUsed          = []string{"ls", "msdat", "mains", "md", "shd", "wr", "opres"}
	hybridUsed       = []string{"ls", "msdat", "mains", "md", "shd", "wr", "apl", "mdshd"}
	winvUsed         = []string{"ls", "msdat", "mains", "md", "shd", "wr", "oclean", "opres"}
	hybridUpdateUsed = dragonUsed
	allUsed          = []string{"ls", "msdat", "mains", "md", "shd", "wr", "mdshd", "apl", "oclean", "opres", "nshd"}

	baseMask         = mustMask(baseUsed)
	noCacheMask      = mustMask(noCacheUsed)
	swFlushMask      = mustMask(swFlushUsed)
	dragonMask       = mustMask(dragonUsed)
	dirMask          = mustMask(dirUsed)
	hybridMask       = mustMask(hybridUsed)
	winvMask         = mustMask(winvUsed)
	hybridUpdateMask = mustMask(hybridUpdateUsed)
	allMask          = mustMask(allUsed)
)

// ParamsUsed implements ParamsUser: Base misses depend only on the
// reference mix and miss rates (Table 3).
func (Base) ParamsUsed() []string { return baseUsed }

func (Base) fieldMask() fieldMask { return baseMask }

// ParamsUsed implements ParamsUser (Table 4: shared references bypass the
// cache, split by wr).
func (NoCache) ParamsUsed() []string { return noCacheUsed }

func (NoCache) fieldMask() fieldMask { return noCacheMask }

// ParamsUsed implements ParamsUser (Table 5: flush rate ls*shd/apl, dirty
// flushes with probability mdshd; wr does not appear).
func (SoftwareFlush) ParamsUsed() []string { return swFlushUsed }

func (SoftwareFlush) fieldMask() fieldMask { return swFlushMask }

// ParamsUsed implements ParamsUser (Table 6: Dragon reacts to the sharing
// parameters but ignores apl and mdshd, which are flush artifacts).
func (Dragon) ParamsUsed() []string { return dragonUsed }

func (Dragon) fieldMask() fieldMask { return dragonMask }

// ParamsUsed implements ParamsUser (extension scheme: invalidation
// traffic scales with shd*wr*opres).
func (Directory) ParamsUsed() []string { return dirUsed }

func (Directory) fieldMask() fieldMask { return dirMask }

// ParamsUsed implements ParamsUser: the hybrid combines the No-Cache and
// Software-Flush parameter sets.
func (Hybrid) ParamsUsed() []string { return hybridUsed }

func (Hybrid) fieldMask() fieldMask { return hybridMask }

// ParamsUsed implements ParamsUser: Write-Invalidate reacts to the
// Dragon sharing parameters except nshd (invalidations steal no cycles —
// they convert into misses instead).
func (WriteInvalidate) ParamsUsed() []string { return winvUsed }

func (WriteInvalidate) fieldMask() fieldMask { return winvMask }

// ParamsUsed implements ParamsUser: the update share broadcasts like
// Dragon (including cycle steals via nshd), the invalidate share misses
// like Write-Invalidate, so the union is exactly Dragon's set.
func (HybridUpdate) ParamsUsed() []string { return hybridUpdateUsed }

func (HybridUpdate) fieldMask() fieldMask { return hybridUpdateMask }
