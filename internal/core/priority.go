package core

import "fmt"

// PriorityBus is an EXTENSION, not part of the paper's model: it wraps
// another scheme and swaps the bus service discipline from FCFS to a
// two-class priority queue, after the FCFS-versus-priority bus studies
// of Nikolov & Lerato (PAPERS.md). The workload model — the inner
// scheme's operation frequencies — is unchanged; what changes is how
// the contention model serves the resulting bus transactions:
// coherence operations (flushes, invalidations, update broadcasts,
// word read/write-throughs) are served ahead of queued ordinary miss
// refills, so the MVA layer routes the demand through the priority
// solver instead of the FCFS one. Bus-only: the network contention
// model has no priority counterpart.
type PriorityBus struct {
	// Inner is the wrapped scheme whose frequency table is used
	// unchanged. A nil Inner defaults to Software-Flush, the registered
	// instance's inner scheme.
	Inner Scheme
}

// inner returns the wrapped scheme, defaulting a zero PriorityBus.
func (b PriorityBus) inner() Scheme {
	if b.Inner == nil {
		return SoftwareFlush{}
	}
	return b.Inner
}

// Name implements Scheme: the inner scheme's name with a "+Prio"
// discipline marker.
func (b PriorityBus) Name() string { return b.inner().Name() + "+Prio" }

// String keeps the inner scheme's diagnostic form (which may carry knob
// values) so cache keys stay distinct across inner configurations.
func (b PriorityBus) String() string {
	if s, ok := b.inner().(fmt.Stringer); ok {
		return s.String() + "+Prio"
	}
	return b.Name()
}

// Frequencies implements Scheme by delegating to the inner scheme.
func (b PriorityBus) Frequencies(p Params) ([]OpFreq, error) {
	return b.inner().Frequencies(p)
}

// HighPriority implements PrioritySplitter: coherence traffic —
// flushes, invalidations, update broadcasts, and the word-granularity
// read/write-throughs of uncached shared data — jumps the queue;
// ordinary miss refills (clean/dirty, memory or cache supplied) wait.
func (PriorityBus) HighPriority(op Op) bool {
	switch op {
	case OpReadThrough, OpWriteThrough, OpWriteBroadcast, OpInvalidate,
		OpCleanFlush, OpDirtyFlush, OpCycleSteal:
		return true
	}
	return false
}

// ParamsUsed implements ParamsUser by delegating to the inner scheme;
// an inner scheme without a declaration keeps every parameter
// significant (no collapsing — fail safe).
func (b PriorityBus) ParamsUsed() []string {
	if u, ok := b.inner().(ParamsUser); ok {
		return u.ParamsUsed()
	}
	return allUsed
}

// fieldMask delegates to the inner scheme's precomputed mask, falling
// back to the full mask (nothing collapsed) for undeclared inners.
func (b PriorityBus) fieldMask() fieldMask {
	if fm, ok := b.inner().(fieldMasker); ok {
		return fm.fieldMask()
	}
	if u, ok := b.inner().(ParamsUser); ok {
		if m, ok := maskOf(u.ParamsUsed()); ok {
			return m
		}
	}
	return allMask
}
