package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// paramsJSON is the on-disk form of Params, keyed by the paper's
// parameter names.
type paramsJSON struct {
	LS     *float64 `json:"ls"`
	MsDat  *float64 `json:"msdat"`
	MsIns  *float64 `json:"mains"`
	MD     *float64 `json:"md"`
	Shd    *float64 `json:"shd"`
	WR     *float64 `json:"wr"`
	APL    *float64 `json:"apl"`
	MdShd  *float64 `json:"mdshd"`
	OClean *float64 `json:"oclean"`
	OPres  *float64 `json:"opres"`
	NShd   *float64 `json:"nshd"`
}

// ReadParams decodes a JSON workload description. Omitted fields default
// to their Table 7 middle values, so a file can override just the
// parameters a study cares about:
//
//	{"shd": 0.4, "apl": 2}
//
// Unknown fields are rejected (they are almost certainly typos of the
// paper's parameter names). The result is validated.
func ReadParams(r io.Reader) (Params, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var pj paramsJSON
	if err := dec.Decode(&pj); err != nil {
		return Params{}, fmt.Errorf("core: decoding params: %w", err)
	}
	p := MiddleParams()
	apply := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	apply(&p.LS, pj.LS)
	apply(&p.MsDat, pj.MsDat)
	apply(&p.MsIns, pj.MsIns)
	apply(&p.MD, pj.MD)
	apply(&p.Shd, pj.Shd)
	apply(&p.WR, pj.WR)
	apply(&p.APL, pj.APL)
	apply(&p.MdShd, pj.MdShd)
	apply(&p.OClean, pj.OClean)
	apply(&p.OPres, pj.OPres)
	apply(&p.NShd, pj.NShd)
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// WriteParams encodes the workload as indented JSON with the paper's
// parameter names.
func (p Params) WriteParams(w io.Writer) error {
	if err := p.Validate(); err != nil {
		return err
	}
	pj := paramsJSON{
		LS: &p.LS, MsDat: &p.MsDat, MsIns: &p.MsIns, MD: &p.MD,
		Shd: &p.Shd, WR: &p.WR, APL: &p.APL, MdShd: &p.MdShd,
		OClean: &p.OClean, OPres: &p.OPres, NShd: &p.NShd,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pj)
}
