package core

import (
	"testing"
)

func TestEvaluateBusSingleProcessor(t *testing.T) {
	// With one processor there is no contention: U = 1/c.
	pts, err := EvaluateBus(Base{}, MiddleParams(), BusCosts(), 1)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.Wait != 0 {
		t.Errorf("single processor wait = %g, want 0", p.Wait)
	}
	if !approx(p.Utilization, 1/1.06912, 1e-5) {
		t.Errorf("U = %g, want %g", p.Utilization, 1/1.06912)
	}
	if !approx(p.Power, p.Utilization, 1e-12) {
		t.Errorf("power %g != utilization %g at n=1", p.Power, p.Utilization)
	}
}

func TestEvaluateBusSchemeOrderingMiddle(t *testing.T) {
	// Paper Section 5.1: Base best, Dragon close behind, then
	// Software-Flush (medium apl), then No-Cache — at every machine
	// size at middle parameters.
	p := MiddleParams()
	bus := BusCosts()
	order := []Scheme{Base{}, Dragon{}, SoftwareFlush{}, NoCache{}}
	curves := make([][]BusPoint, len(order))
	for i, s := range order {
		pts, err := EvaluateBus(s, p, bus, 16)
		if err != nil {
			t.Fatal(err)
		}
		curves[i] = pts
	}
	for n := 0; n < 16; n++ {
		for i := 1; i < len(order); i++ {
			if curves[i][n].Power > curves[i-1][n].Power+1e-9 {
				t.Errorf("n=%d: %s power %g exceeds %s power %g",
					n+1, order[i].Name(), curves[i][n].Power,
					order[i-1].Name(), curves[i-1][n].Power)
			}
		}
	}
}

func TestEvaluateBusPowerBelowIdeal(t *testing.T) {
	// All schemes fall below the ideal n-processor line as long as
	// there is any cache activity.
	for _, s := range PaperSchemes() {
		pts, err := EvaluateBus(s, MiddleParams(), BusCosts(), 20)
		if err != nil {
			t.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Power >= float64(pt.Processors) {
				t.Errorf("%s n=%d: power %g >= ideal", s.Name(), pt.Processors, pt.Power)
			}
		}
	}
}

func TestEvaluateBusDiminishingReturns(t *testing.T) {
	// Section 5.1: the incremental benefit of adding a processor
	// shrinks as the system grows (power is concave in n).
	pts, err := EvaluateBus(NoCache{}, MiddleParams(), BusCosts(), 32)
	if err != nil {
		t.Fatal(err)
	}
	prevGain := pts[0].Power
	for i := 1; i < len(pts); i++ {
		gain := pts[i].Power - pts[i-1].Power
		if gain > prevGain+1e-9 {
			t.Errorf("n=%d: marginal gain %g exceeds previous %g", i+1, gain, prevGain)
		}
		prevGain = gain
	}
}

func TestNoCacheSaturatesBelow2AtHighLoad(t *testing.T) {
	// Section 5.2: with high ls and shd, No-Cache "saturates the bus
	// with a processing power less than 2".
	p := MiddleParams()
	p.LS, p.Shd = 0.4, 0.42
	sat, err := SaturationPower(NoCache{}, p, BusCosts())
	if err != nil {
		t.Fatal(err)
	}
	if sat >= 2 {
		t.Errorf("No-Cache high-load saturation power = %g, want < 2", sat)
	}
	pts, err := EvaluateBus(NoCache{}, p, BusCosts(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if pts[31].Power >= 2 {
		t.Errorf("No-Cache 32-processor power = %g, want < 2", pts[31].Power)
	}
}

func TestSoftwareFlushSaturatesBelow5AtHighLoad(t *testing.T) {
	// Section 5.2: Software-Flush at high ls/shd (medium apl)
	// "saturates the bus with processing power less than 5".
	p := MiddleParams()
	p.LS, p.Shd = 0.4, 0.42
	sat, err := SaturationPower(SoftwareFlush{}, p, BusCosts())
	if err != nil {
		t.Fatal(err)
	}
	if sat >= 5 {
		t.Errorf("Software-Flush high-load saturation power = %g, want < 5", sat)
	}
}

func TestDragonGoodAt16HighLoad(t *testing.T) {
	// Section 5.2: "With high ls and shd, Dragon still gives good
	// performance" — at 16 processors it should retain a large
	// fraction of ideal power while No-Cache collapses.
	p := MiddleParams()
	p.LS, p.Shd = 0.4, 0.42
	dragon, err := BusPower(Dragon{}, p, BusCosts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	nocache, err := BusPower(NoCache{}, p, BusCosts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if dragon < 8 {
		t.Errorf("Dragon power at 16 procs high load = %g, want >= 8", dragon)
	}
	if dragon < 4*nocache {
		t.Errorf("Dragon (%g) should dominate No-Cache (%g) by a wide margin", dragon, nocache)
	}
}

func TestSoftwareFlushBetweenDragonAndNoCache(t *testing.T) {
	// Section 5.3: SF usually sits between Dragon and No-Cache, but
	// beats Dragon at very high apl and falls below No-Cache at apl=1.
	bus := BusCosts()
	base := MiddleParams()

	mid, err := BusPower(SoftwareFlush{}, base, bus, 8)
	if err != nil {
		t.Fatal(err)
	}
	dragon, err := BusPower(Dragon{}, base, bus, 8)
	if err != nil {
		t.Fatal(err)
	}
	nocache, err := BusPower(NoCache{}, base, bus, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(nocache < mid && mid < dragon) {
		t.Errorf("mid apl: want No-Cache (%g) < SF (%g) < Dragon (%g)", nocache, mid, dragon)
	}

	pLow, _ := base.With("apl", 1)
	worst, err := BusPower(SoftwareFlush{}, pLow, bus, 8)
	if err != nil {
		t.Fatal(err)
	}
	if worst >= nocache {
		t.Errorf("apl=1: SF power %g should fall below No-Cache %g", worst, nocache)
	}

	pHigh, _ := base.With("apl", 1000)
	pHigh.MdShd = 0.5
	best, err := BusPower(SoftwareFlush{}, pHigh, bus, 8)
	if err != nil {
		t.Fatal(err)
	}
	if best <= dragon {
		t.Errorf("apl=1000: SF power %g should beat Dragon %g", best, dragon)
	}
}

func TestBusPowerMonotoneInAPL(t *testing.T) {
	// More references per flush always helps Software-Flush.
	bus := BusCosts()
	prev := 0.0
	for _, apl := range []float64{1, 2, 4, 8, 16, 32, 100} {
		p, err := MiddleParams().With("apl", apl)
		if err != nil {
			t.Fatal(err)
		}
		pw, err := BusPower(SoftwareFlush{}, p, bus, 12)
		if err != nil {
			t.Fatal(err)
		}
		if pw < prev {
			t.Errorf("apl=%g: power %g decreased from %g", apl, pw, prev)
		}
		prev = pw
	}
}

func TestSaturationPowerMatchesLargeN(t *testing.T) {
	// EvaluateBus at very large n should approach 1/b.
	p := MiddleParams()
	p.LS, p.Shd = 0.4, 0.42
	sat, err := SaturationPower(NoCache{}, p, BusCosts())
	if err != nil {
		t.Fatal(err)
	}
	pts, err := EvaluateBus(NoCache{}, p, BusCosts(), 200)
	if err != nil {
		t.Fatal(err)
	}
	got := pts[199].Power
	if got > sat+1e-9 || got < sat*0.98 {
		t.Errorf("200-processor power %g vs saturation bound %g", got, sat)
	}
}

func TestEvaluateBusErrors(t *testing.T) {
	if _, err := EvaluateBus(Base{}, MiddleParams(), BusCosts(), 0); err == nil {
		t.Error("want error for zero processors")
	}
	bad := MiddleParams()
	bad.Shd = -1
	if _, err := EvaluateBus(Base{}, bad, BusCosts(), 4); err == nil {
		t.Error("want error for invalid params")
	}
	if _, err := BusPower(Dragon{}, MiddleParams(), NetworkCosts(3), 4); err == nil {
		t.Error("want error for Dragon on network costs")
	}
}

func TestSaturationPowerNoBusTraffic(t *testing.T) {
	p := MiddleParams()
	p.LS, p.MsDat, p.MsIns, p.Shd = 0, 0, 0, 0
	sat, err := SaturationPower(Base{}, p, BusCosts())
	if err != nil {
		t.Fatal(err)
	}
	if sat != 0 {
		t.Errorf("bus-free workload saturation sentinel = %g, want 0", sat)
	}
}
