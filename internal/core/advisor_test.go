package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestRankBusOrdering(t *testing.T) {
	ranked, err := RankBus(PaperSchemes(), MiddleParams(), BusCosts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 4 {
		t.Fatalf("got %d rankings", len(ranked))
	}
	names := []string{}
	for i, r := range ranked {
		names = append(names, r.Scheme.Name())
		if i > 0 && r.Power > ranked[i-1].Power {
			t.Error("not sorted by power")
		}
		if r.Efficiency <= 0 || r.Efficiency > 1.0001 {
			t.Errorf("%s efficiency %g", r.Scheme.Name(), r.Efficiency)
		}
	}
	if names[0] != "Base" || names[1] != "Dragon" || names[3] != "No-Cache" {
		t.Errorf("ordering %v", names)
	}
}

func TestRankNetworkSkipsDragon(t *testing.T) {
	ranked, err := RankNetwork(PaperSchemes(), MiddleParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranked {
		if r.Scheme.Name() == "Dragon" {
			t.Fatal("Dragon must be skipped on a network")
		}
	}
	if len(ranked) != 3 {
		t.Errorf("got %d rankings, want 3", len(ranked))
	}
}

func TestRecommendBus(t *testing.T) {
	// On a bus at middle parameters the snoopy hardware wins.
	best, err := Recommend(MiddleParams(), 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Scheme.Name() != "Dragon" {
		t.Errorf("bus recommendation = %s, want Dragon", best.Scheme.Name())
	}
}

func TestRecommendNetwork(t *testing.T) {
	best, err := Recommend(MiddleParams(), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if best.Scheme.Name() == "Dragon" {
		t.Error("network recommendation cannot be a snoopy scheme")
	}
	if best.Power <= 0 {
		t.Error("zero power recommendation")
	}
}

func TestRankErrors(t *testing.T) {
	if _, err := RankBus(nil, MiddleParams(), BusCosts(), 4); err == nil {
		t.Error("want error for no candidates")
	}
	if _, err := RankNetwork(nil, MiddleParams(), 8); err == nil {
		t.Error("want error for no candidates")
	}
	if _, err := RankBus([]Scheme{Dragon{}}, MiddleParams(), NetworkCosts(4), 4); err == nil {
		t.Error("want error when every candidate is unsupported")
	}
	bad := MiddleParams()
	bad.LS = -1
	if _, err := RankBus(PaperSchemes(), bad, BusCosts(), 4); err == nil {
		t.Error("want error for invalid params")
	}
}

func TestParamsJSONRoundTrip(t *testing.T) {
	p := ParamsAt(High)
	var buf bytes.Buffer
	if err := p.WriteParams(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Errorf("round trip: %+v != %+v", got, p)
	}
}

func TestReadParamsPartialOverride(t *testing.T) {
	p, err := ReadParams(strings.NewReader(`{"shd": 0.4, "apl": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Shd != 0.4 || p.APL != 2 {
		t.Errorf("overrides not applied: %+v", p)
	}
	mid := MiddleParams()
	if p.LS != mid.LS || p.OClean != mid.OClean {
		t.Error("unspecified fields must default to middle values")
	}
}

func TestReadParamsRejectsGarbage(t *testing.T) {
	cases := []string{
		`{"shared": 0.4}`, // unknown field (typo of shd)
		`{"apl": 0.5}`,    // invalid domain
		`{"ls": "high"}`,  // wrong type
		`not json`,
	}
	for _, in := range cases {
		if _, err := ReadParams(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestWriteParamsRejectsInvalid(t *testing.T) {
	p := MiddleParams()
	p.APL = 0
	var buf bytes.Buffer
	if err := p.WriteParams(&buf); err == nil {
		t.Error("want error for invalid params")
	}
}
