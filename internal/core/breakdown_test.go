package core

import (
	"testing"
)

func TestDemandBreakdownSumsToTotals(t *testing.T) {
	for _, s := range append(PaperSchemes(), Hybrid{LockFrac: 0.3}, Directory{}) {
		breakdown, d, err := DemandBreakdown(s, MiddleParams(), BusCosts())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		var cpu, ic, cpuShare, icShare float64
		for _, oc := range breakdown {
			cpu += oc.CPU
			ic += oc.Interconnect
			cpuShare += oc.CPUShare
			icShare += oc.InterconnectShare
		}
		if !approx(cpu, d.CPU, 1e-12) || !approx(ic, d.Interconnect, 1e-12) {
			t.Errorf("%s: breakdown sums (%g,%g) != demand (%g,%g)", s.Name(), cpu, ic, d.CPU, d.Interconnect)
		}
		if !approx(cpuShare, 1, 1e-9) || !approx(icShare, 1, 1e-9) {
			t.Errorf("%s: shares sum to (%g,%g), want 1", s.Name(), cpuShare, icShare)
		}
	}
}

func TestDemandBreakdownSorted(t *testing.T) {
	breakdown, _, err := DemandBreakdown(NoCache{}, MiddleParams(), BusCosts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(breakdown); i++ {
		if breakdown[i].Interconnect > breakdown[i-1].Interconnect+1e-15 {
			t.Error("breakdown not sorted by interconnect contribution")
		}
	}
	// For No-Cache at middle params, the read-through dominates bus
	// demand (Section 5.1's diagnosis of why No-Cache loses).
	if breakdown[0].Op != OpReadThrough {
		t.Errorf("No-Cache's dominant bus consumer = %v, want read-through", breakdown[0].Op)
	}
}

func TestDemandBreakdownErrors(t *testing.T) {
	bad := MiddleParams()
	bad.LS = 9
	if _, _, err := DemandBreakdown(Base{}, bad, BusCosts()); err == nil {
		t.Error("want error for invalid params")
	}
	if _, _, err := DemandBreakdown(Dragon{}, MiddleParams(), NetworkCosts(4)); err == nil {
		t.Error("want error for unsupported scheme")
	}
}
