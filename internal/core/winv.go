package core

// WriteInvalidate is an EXTENSION, not part of the paper's model: a
// snoopy write-invalidate hardware protocol in the MESI family, the
// classic alternative to Dragon's write-broadcast policy. A store to a
// block present in other caches broadcasts its address once and
// invalidates the other copies (OpInvalidate); the invalidated readers
// re-miss on their next reference, so invalidation traffic converts into
// extra data misses instead of Dragon's word broadcasts and cycle
// steals. Misses whose block is dirty in another cache are supplied
// cache-to-cache, as in Dragon. The frequency table mirrors the
// Table 3-6 shape: per non-flush instruction, OpInstr always present.
type WriteInvalidate struct{}

// Name implements Scheme.
func (WriteInvalidate) Name() string { return "Write-Invalidate" }

// Frequencies implements Scheme. Invalidations occur on stores to shared
// blocks present elsewhere (ls*shd*wr*opres, the same event that
// triggers Dragon's broadcast); each one forces a re-fetch miss in the
// invalidated caches, so data misses are ls*msdat plus the invalidation
// rate. Misses split between memory-supplied and cache-supplied exactly
// as in Dragon (probability shd*(1-oclean) that the block is dirty in
// another cache).
func (WriteInvalidate) Frequencies(p Params) ([]OpFreq, error) {
	inval := p.LS * p.Shd * p.WR * p.OPres
	fromCache := p.Shd * (1 - p.OClean)
	dataMiss := p.LS*p.MsDat + inval
	memMiss := dataMiss*(1-fromCache) + p.MsIns
	cacheMiss := dataMiss * fromCache
	return []OpFreq{
		{OpInstr, 1},
		{OpCleanMissMem, memMiss * (1 - p.MD)},
		{OpDirtyMissMem, memMiss * p.MD},
		{OpCleanMissCache, cacheMiss * (1 - p.MD)},
		{OpDirtyMissCache, cacheMiss * p.MD},
		{OpInvalidate, inval},
	}, nil
}
