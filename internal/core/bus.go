package core

import (
	"fmt"

	"swcc/internal/queueing"
)

// BusPoint is the model's prediction for one processor count on a shared
// bus.
type BusPoint struct {
	// Processors is the machine size n.
	Processors int
	// CPU is c, the mean CPU cycles per instruction without contention.
	CPU float64
	// Bus is b, the mean bus cycles per instruction.
	Bus float64
	// Wait is w, the mean contention cycles per instruction.
	Wait float64
	// Utilization is U = 1/(c+w), the fraction of time in productive
	// (1-cycle-per-instruction) computation.
	Utilization float64
	// Power is n*U, the machine's processing power in equivalent fully
	// utilized processors.
	Power float64
	// BusUtilization is the fraction of time the bus is busy.
	BusUtilization float64
}

// EvaluateBus runs the bus model for populations 1..maxProcs and returns
// one point per machine size. The contention model is the closed
// single-server queueing network of Section 2.3: transactions of mean
// service b arrive once every c-b cycles per processor.
func EvaluateBus(s Scheme, p Params, costs *CostTable, maxProcs int) ([]BusPoint, error) {
	if maxProcs < 1 {
		return nil, fmt.Errorf("core: maxProcs %d < 1", maxProcs)
	}
	d, err := ComputeDemand(s, p, costs)
	if err != nil {
		return nil, err
	}
	var mva []queueing.SingleServerResult
	if d.Priority > 0 {
		hi, lo := d.PrioritySplit()
		mva, err = queueing.PrioritySingleServerMVA(d.Think(), hi, lo, maxProcs, nil)
	} else {
		mva, err = queueing.SingleServerMVA(d.Think(), d.Interconnect, maxProcs)
	}
	if err != nil {
		return nil, err
	}
	points := make([]BusPoint, maxProcs)
	for i, r := range mva {
		points[i] = BusPointFromMVA(d, r)
	}
	return points, nil
}

// BusPointFromMVA converts one MVA population result for demand d into a
// BusPoint. EvaluateBus is ComputeDemand + SingleServerMVA + this; cached
// evaluators (internal/sweep) reuse it so their results are bit-identical
// to a fresh solve.
func BusPointFromMVA(d Demand, r queueing.SingleServerResult) BusPoint {
	u := 1 / (d.CPU + r.Wait)
	return BusPoint{
		Processors:     r.Customers,
		CPU:            d.CPU,
		Bus:            d.Interconnect,
		Wait:           r.Wait,
		Utilization:    u,
		Power:          float64(r.Customers) * u,
		BusUtilization: r.Utilization,
	}
}

// BusPower is a convenience wrapper returning only the processing power at
// exactly nproc processors.
func BusPower(s Scheme, p Params, costs *CostTable, nproc int) (float64, error) {
	pts, err := EvaluateBus(s, p, costs, nproc)
	if err != nil {
		return 0, err
	}
	return pts[nproc-1].Power, nil
}

// SaturationPower returns the asymptotic processing power of a scheme on
// the bus: when the bus saturates, the machine completes one transaction
// per b cycles, i.e. 1/b instructions per cycle, regardless of n.
func SaturationPower(s Scheme, p Params, costs *CostTable) (float64, error) {
	d, err := ComputeDemand(s, p, costs)
	if err != nil {
		return 0, err
	}
	if d.Interconnect == 0 {
		return 0, nil // never saturates; power grows without bound
	}
	return 1 / d.Interconnect, nil
}
