package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestSchemeNamesPinned pins the sorted canonical name list. A new
// registration must update this test (and SCHEMES.md, which the drift
// test ties to the same source of truth).
func TestSchemeNamesPinned(t *testing.T) {
	want := []string{
		"Base",
		"Directory",
		"Dragon",
		"Hybrid",
		"Hybrid-Update",
		"No-Cache",
		"Software-Flush",
		"Software-Flush+Prio",
		"Write-Invalidate",
	}
	if got := SchemeNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("SchemeNames() = %v, want %v", got, want)
	}
}

// TestRegistryDuplicateRegistrationPanics: duplicate names and aliases
// must fail loudly at registration, never overwrite.
func TestRegistryDuplicateRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Register(Info{Scheme: Base{}, Aliases: []string{"base"}})
	mustPanic("duplicate canonical name", func() {
		r.Register(Info{Scheme: Base{}})
	})
	mustPanic("alias colliding with a canonical name", func() {
		r.Register(Info{Scheme: Dragon{}, Aliases: []string{"Base"}})
	})
	mustPanic("duplicate alias", func() {
		r.Register(Info{Scheme: Dragon{}, Aliases: []string{"base"}})
	})
	mustPanic("nil scheme", func() {
		r.Register(Info{})
	})
}

// TestRegistryLookupAliases: every registered alias resolves to the
// same entry as its canonical name, and lookups are case-sensitive
// (matching the pre-registry SchemeByName contract).
func TestRegistryLookupAliases(t *testing.T) {
	for _, tc := range []struct{ alias, canonical string }{
		{"base", "Base"},
		{"dragon", "Dragon"},
		{"swflush", "Software-Flush"},
		{"flush", "Software-Flush"},
		{"nocache", "No-Cache"},
		{"no-cache", "No-Cache"},
		{"directory", "Directory"},
		{"hybrid", "Hybrid"},
		{"winv", "Write-Invalidate"},
		{"wi", "Write-Invalidate"},
		{"mesi", "Write-Invalidate"},
		{"hybrid-update", "Hybrid-Update"},
		{"competitive", "Hybrid-Update"},
		{"swflush-prio", "Software-Flush+Prio"},
		{"priority", "Software-Flush+Prio"},
	} {
		info, ok := SchemeInfoByName(tc.alias)
		if !ok {
			t.Errorf("alias %q not registered", tc.alias)
			continue
		}
		if got := info.Scheme.Name(); got != tc.canonical {
			t.Errorf("alias %q -> %q, want %q", tc.alias, got, tc.canonical)
		}
	}
	if _, ok := SchemeInfoByName("SWFLUSH"); ok {
		t.Error("lookup is not case-sensitive")
	}
}

// TestSchemeByNameErrorListsValidNames: the unknown-name error must
// enumerate the registry's canonical names, so the hint can never go
// stale the way a hardcoded list would.
func TestSchemeByNameErrorListsValidNames(t *testing.T) {
	_, err := SchemeByName("firefly")
	if err == nil {
		t.Fatal("want error for unknown scheme")
	}
	for _, name := range SchemeNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered scheme %q", err, name)
		}
	}
}

// cacheLabel mirrors the cache-identity rule used by the sweep
// evaluator, serve handlers, and gateway keys: String when the scheme
// carries configuration, Name otherwise.
func cacheLabel(s Scheme) string {
	if str, ok := s.(fmt.Stringer); ok {
		return str.String()
	}
	return s.Name()
}

// TestCanonicalFingerprintsPairwiseDistinct: every registered scheme
// must produce a distinct, stable cache fingerprint — the (label,
// canonical params) pair the memo cache, snapshots, and gateway
// affinity all key on. A collision would silently serve one scheme's
// results for another.
func TestCanonicalFingerprintsPairwiseDistinct(t *testing.T) {
	p := MiddleParams()
	seen := map[string]string{} // fingerprint -> scheme name
	for _, info := range RegisteredSchemes() {
		s := info.Scheme
		fp := fmt.Sprintf("%s|%+v", cacheLabel(s), CanonicalParams(s, p))
		if prev, ok := seen[fp]; ok {
			t.Errorf("%s and %s share cache fingerprint %q", prev, s.Name(), fp)
		}
		seen[fp] = s.Name()
	}
	// Knobbed variants must also be distinct from their defaults.
	for _, tc := range []struct {
		a, b Scheme
	}{
		{Hybrid{LockFrac: 0.3}, Hybrid{LockFrac: 0.4}},
		{HybridUpdate{UpdateFrac: 0.5}, HybridUpdate{UpdateFrac: 0.7}},
		{PriorityBus{Inner: SoftwareFlush{}}, SoftwareFlush{}},
	} {
		if cacheLabel(tc.a) == cacheLabel(tc.b) {
			t.Errorf("distinct configurations share label %q", cacheLabel(tc.a))
		}
	}
}

// TestRegisteredLabel covers the snapshot fail-close predicate: labels
// of every registered scheme (knobbed spellings included) pass; labels
// from unknown schemes fail.
func TestRegisteredLabel(t *testing.T) {
	for _, info := range RegisteredSchemes() {
		if !RegisteredLabel(cacheLabel(info.Scheme)) {
			t.Errorf("label %q of registered scheme not recognized", cacheLabel(info.Scheme))
		}
	}
	for _, label := range []string{
		"Hybrid(lock=0.85)",
		"Hybrid-Update(update=0.10)",
		"Software-Flush+Prio",
	} {
		if !RegisteredLabel(label) {
			t.Errorf("knobbed label %q not recognized", label)
		}
	}
	for _, label := range []string{"Firefly", "MOESI(x=1)", ""} {
		if RegisteredLabel(label) {
			t.Errorf("unknown label %q recognized", label)
		}
	}
}

// TestPaperSchemesFromRegistry: PaperSchemes must keep the paper's
// presentation order regardless of how many extensions register.
func TestPaperSchemesFromRegistry(t *testing.T) {
	var got []string
	for _, s := range PaperSchemes() {
		got = append(got, s.Name())
	}
	want := []string{"Base", "Dragon", "Software-Flush", "No-Cache"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PaperSchemes() = %v, want %v", got, want)
	}
}

// TestDefaultCandidatesFromRegistry: the advisor candidate set is every
// Advise-marked registration, which excludes Base (it is the
// yardstick, not an implementable choice).
func TestDefaultCandidatesFromRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, s := range DefaultCandidates() {
		names[s.Name()] = true
	}
	if names["Base"] {
		t.Error("Base must not be an advisor candidate")
	}
	for _, want := range []string{
		"Dragon", "Software-Flush", "No-Cache", "Hybrid", "Directory",
		"Write-Invalidate", "Hybrid-Update", "Software-Flush+Prio",
	} {
		if !names[want] {
			t.Errorf("advisor candidates missing %s", want)
		}
	}
}
