package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Info is one registry entry: a scheme prototype plus the metadata the
// API surfaces need to resolve, configure, constrain, and document it.
type Info struct {
	// Scheme is the default instance, used when no knob value is given.
	Scheme Scheme
	// Aliases are additional accepted spellings besides the canonical
	// Scheme.Name() (e.g. "swflush" for Software-Flush). Resolution is
	// case-sensitive, matching the original SchemeByName contract.
	Aliases []string
	// Paper marks the four schemes the paper evaluates; PaperSchemes
	// returns them in registration order.
	Paper bool
	// Snoopy marks schemes that rely on bus snooping (write broadcasts,
	// invalidations, cache-to-cache supply). Snoopy schemes are bus-only
	// because multistage networks have no broadcast medium.
	Snoopy bool
	// BusOnly marks schemes defined only on the shared bus. Every
	// snoopy scheme is bus-only; so is the priority bus service
	// discipline, whose two-class contention model has no network
	// counterpart.
	BusOnly bool
	// Advise includes the scheme's default instance in the advisor's
	// candidate set (Recommend, /v1/advisor without an explicit list).
	Advise bool
	// Knob names the scheme's tuning parameter ("lockfrac",
	// "updatefrac"); empty for knobless schemes.
	Knob string
	// KnobDefault is the knob value behind the default Scheme instance.
	KnobDefault float64
	// Configure builds an instance with the given knob value; nil for
	// knobless schemes.
	Configure func(v float64) (Scheme, error)
	// Summary is a one-line description for docs and CLI help.
	Summary string
}

// Registry maps scheme names and aliases to registered Info entries. It
// replaces the old hardcoded SchemeByName switch: every enumeration site
// (core, sim, sweep, serve, advisor, CLIs) reads from it, so adding a
// protocol is one new file plus one Register call. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Info
	order  []*Info
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*Info{}}
}

// Register adds a scheme under its canonical Scheme.Name() plus every
// alias. It panics on a nil or unnamed scheme and on any name or alias
// already taken — duplicate registrations are programming errors that
// must fail loudly at init, not overwrite silently at runtime.
func (r *Registry) Register(info Info) {
	if info.Scheme == nil {
		panic("core: Register called with nil Scheme")
	}
	name := info.Scheme.Name()
	if name == "" {
		panic("core: Register called with unnamed Scheme")
	}
	entry := info
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, key := range append([]string{name}, info.Aliases...) {
		if prev, ok := r.byName[key]; ok {
			panic(fmt.Sprintf("core: scheme name %q already registered for %s", key, prev.Scheme.Name()))
		}
		r.byName[key] = &entry
	}
	r.order = append(r.order, &entry)
}

// Lookup resolves a name or alias to its registry entry.
func (r *Registry) Lookup(name string) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	info, ok := r.byName[name]
	if !ok {
		return Info{}, false
	}
	return *info, true
}

// ByName resolves a name or alias to the scheme's default instance. The
// error lists the registered canonical names so callers never see a
// stale hardcoded hint.
func (r *Registry) ByName(name string) (Scheme, error) {
	if info, ok := r.Lookup(name); ok {
		return info.Scheme, nil
	}
	return nil, fmt.Errorf("core: unknown scheme %q (valid: %s)", name, strings.Join(r.Names(), ", "))
}

// All returns every registered entry in registration order.
func (r *Registry) All() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, len(r.order))
	for i, info := range r.order {
		out[i] = *info
	}
	return out
}

// Names returns the sorted canonical names of all registered schemes.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, len(r.order))
	for i, info := range r.order {
		names[i] = info.Scheme.Name()
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Candidates returns the default instances of every Advise-marked scheme
// in registration order: the advisor's candidate set.
func (r *Registry) Candidates() []Scheme {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []Scheme
	for _, info := range r.order {
		if info.Advise {
			out = append(out, info.Scheme)
		}
	}
	return out
}

// registry is the package default registry behind the package-level
// functions; the built-in schemes register into it at init.
var registry = NewRegistry()

// Register adds a scheme to the default registry. See Registry.Register.
func Register(info Info) { registry.Register(info) }

// SchemeInfoByName resolves a name or alias against the default registry.
func SchemeInfoByName(name string) (Info, bool) { return registry.Lookup(name) }

// RegisteredSchemes returns every default-registry entry in registration
// order.
func RegisteredSchemes() []Info { return registry.All() }

// SchemeNames returns the sorted canonical names of the default
// registry's schemes.
func SchemeNames() []string { return registry.Names() }

// DefaultCandidates returns the advisor's default candidate set from the
// default registry.
func DefaultCandidates() []Scheme { return registry.Candidates() }

// RegisteredLabel reports whether a scheme label — a Scheme.Name() or
// String() value such as "Hybrid(lock=0.30)" or "Software-Flush+Prio" —
// refers to a scheme registered in the default registry. Snapshot
// restore uses it to fail closed on snapshots written by binaries with
// schemes this one does not know.
func RegisteredLabel(label string) bool {
	base := label
	if i := strings.IndexByte(base, '('); i >= 0 {
		// Strip a knob suffix like "(lock=0.30)", keeping any trailing
		// discipline marker: "Hybrid(lock=0.30)+Prio" -> "Hybrid+Prio".
		rest := base[i:]
		if j := strings.IndexByte(rest, ')'); j >= 0 {
			base = base[:i] + rest[j+1:]
		} else {
			base = base[:i]
		}
	}
	_, ok := registry.Lookup(base)
	return ok
}

// init registers the built-in schemes. Grouped in one place (rather than
// per-file init functions) so registration order — which fixes
// PaperSchemes, candidate order, and docs listings — does not depend on
// compilation file order. Third-party protocols register from their own
// files; each is one file plus one Register call.
func init() {
	Register(Info{
		Scheme:  Base{},
		Aliases: []string{"base"},
		Paper:   true,
		Summary: "coherence-free upper bound: every reference behaves as in a uniprocessor",
	})
	Register(Info{
		Scheme:  Dragon{},
		Aliases: []string{"dragon"},
		Paper:   true,
		Snoopy:  true,
		BusOnly: true,
		Advise:  true,
		Summary: "snoopy write-broadcast hardware protocol (paper Table 6)",
	})
	Register(Info{
		Scheme:  SoftwareFlush{},
		Aliases: []string{"swflush", "software-flush", "flush"},
		Paper:   true,
		Advise:  true,
		Summary: "software scheme: cache shared data, flush at critical-section exit (paper Table 5)",
	})
	Register(Info{
		Scheme:  NoCache{},
		Aliases: []string{"nocache", "no-cache"},
		Paper:   true,
		Advise:  true,
		Summary: "software scheme: shared data uncacheable, word reads/writes through (paper Table 4)",
	})
	Register(Info{
		Scheme:  Directory{},
		Aliases: []string{"directory"},
		Advise:  true,
		Summary: "minimal directory-based hardware scheme, valid on bus and network (extension)",
	})
	Register(Info{
		Scheme:      Hybrid{LockFrac: defaultLockFrac},
		Aliases:     []string{"hybrid"},
		Advise:      true,
		Knob:        "lockfrac",
		KnobDefault: defaultLockFrac,
		Configure:   func(v float64) (Scheme, error) { return Hybrid{LockFrac: v}, nil },
		Summary:     "No-Cache for the lock share of shared references, Software-Flush for the rest",
	})
	Register(Info{
		Scheme:  WriteInvalidate{},
		Aliases: []string{"winv", "write-invalidate", "wi", "mesi"},
		Snoopy:  true,
		BusOnly: true,
		Advise:  true,
		Summary: "snoopy write-invalidate (MESI-style) hardware protocol (extension)",
	})
	Register(Info{
		Scheme:      HybridUpdate{UpdateFrac: defaultUpdateFrac},
		Aliases:     []string{"hybrid-update", "hybridupdate", "competitive"},
		Snoopy:      true,
		BusOnly:     true,
		Advise:      true,
		Knob:        "updatefrac",
		KnobDefault: defaultUpdateFrac,
		Configure:   func(v float64) (Scheme, error) { return HybridUpdate{UpdateFrac: v}, nil },
		Summary:     "tunable snoopy hybrid: update the hot share of remote stores, invalidate the rest (extension)",
	})
	Register(Info{
		Scheme:  PriorityBus{Inner: SoftwareFlush{}},
		Aliases: []string{"swflush-prio", "software-flush-prio", "prio", "priority"},
		BusOnly: true,
		Advise:  true,
		Summary: "Software-Flush under a priority bus service discipline instead of FCFS (extension)",
	})
}

// defaultLockFrac is the Hybrid knob default used across the stack
// (registry, serve, gateway key derivation).
const defaultLockFrac = 0.3

// defaultUpdateFrac is the Hybrid-Update knob default used across the
// stack.
const defaultUpdateFrac = 0.5
