package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestParamsAtLevelsAreValid(t *testing.T) {
	for _, l := range Levels() {
		p := ParamsAt(l)
		if err := p.Validate(); err != nil {
			t.Errorf("level %v: %v", l, err)
		}
	}
}

func TestMiddleParamsMatchTable7(t *testing.T) {
	p := MiddleParams()
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"ls", p.LS, 0.3},
		{"msdat", p.MsDat, 0.014},
		{"mains", p.MsIns, 0.0022},
		{"md", p.MD, 0.20},
		{"shd", p.Shd, 0.25},
		{"wr", p.WR, 0.25},
		{"mdshd", p.MdShd, 0.25},
		{"apl", p.APL, 1 / 0.13},
		{"oclean", p.OClean, 0.84},
		{"opres", p.OPres, 0.79},
		{"nshd", p.NShd, 1.0},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

func TestFieldsCoverAllParams(t *testing.T) {
	fields := Fields()
	if len(fields) != 11 {
		t.Fatalf("got %d fields, want 11", len(fields))
	}
	// Setting every field to a distinct marker must produce a fully
	// distinct struct (no two specs alias the same field).
	var p Params
	for i, f := range fields {
		f.Set(&p, float64(i+1))
	}
	for i, f := range fields {
		if got := f.Get(&p); got != float64(i+1) {
			t.Errorf("field %s: get after set = %g, want %d (aliased field?)", f.Name, got, i+1)
		}
	}
}

func TestFieldLevelOrdering(t *testing.T) {
	// All fields are ordered low <= mid <= high in workload intensity;
	// apl decreases because fewer references per flush is heavier.
	for _, f := range Fields() {
		if f.Name == "apl" {
			if !(f.Low > f.Mid && f.Mid > f.High) {
				t.Errorf("apl levels must decrease: %g %g %g", f.Low, f.Mid, f.High)
			}
			continue
		}
		if !(f.Low <= f.Mid && f.Mid <= f.High) {
			t.Errorf("%s levels out of order: %g %g %g", f.Name, f.Low, f.Mid, f.High)
		}
	}
}

func TestFieldByName(t *testing.T) {
	f, err := FieldByName("oclean")
	if err != nil {
		t.Fatal(err)
	}
	if f.Mid != 0.84 {
		t.Errorf("oclean mid = %g, want 0.84", f.Mid)
	}
	if _, err := FieldByName("bogus"); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("want ErrInvalidParams for unknown field, got %v", err)
	}
}

func TestWith(t *testing.T) {
	p := MiddleParams()
	q, err := p.With("shd", 0.42)
	if err != nil {
		t.Fatal(err)
	}
	if q.Shd != 0.42 {
		t.Errorf("shd = %g, want 0.42", q.Shd)
	}
	if p.Shd != 0.25 {
		t.Error("With must not mutate the receiver")
	}
	if _, err := p.With("nope", 1); err == nil {
		t.Error("want error for unknown parameter")
	}
}

func TestWithLevel(t *testing.T) {
	p := MiddleParams()
	q, err := p.WithLevel("apl", High)
	if err != nil {
		t.Fatal(err)
	}
	if q.APL != 1 {
		t.Errorf("apl at high = %g, want 1", q.APL)
	}
	if _, err := p.WithLevel("nope", Low); err == nil {
		t.Error("want error for unknown parameter")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []Params{
		func() Params { p := MiddleParams(); p.LS = -0.1; return p }(),
		func() Params { p := MiddleParams(); p.Shd = 1.5; return p }(),
		func() Params { p := MiddleParams(); p.APL = 0.5; return p }(),
		func() Params { p := MiddleParams(); p.NShd = -1; return p }(),
		func() Params { p := MiddleParams(); p.OClean = 2; return p }(),
	}
	for i, p := range cases {
		if err := p.Validate(); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("case %d: want ErrInvalidParams, got %v", i, err)
		}
	}
}

// TestValidateRejectsNonFinite pins the NaN/Inf hardening: NaN compares
// false against every bound, so the plain range checks alone would accept
// it in any field, and +Inf satisfies apl >= 1 and nshd >= 0.
func TestValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	for _, f := range Fields() {
		for _, v := range []float64{nan, math.Inf(1), math.Inf(-1)} {
			p := MiddleParams()
			f.Set(&p, v)
			if err := p.Validate(); !errors.Is(err, ErrInvalidParams) {
				t.Errorf("%s = %v: want ErrInvalidParams, got %v", f.Name, v, err)
			}
		}
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "low" || Mid.String() != "mid" || High.String() != "high" {
		t.Error("level names wrong")
	}
	if Level(9).String() == "" {
		t.Error("unknown level must still print")
	}
}

func TestWithRoundTrip(t *testing.T) {
	f := func(idx uint8, raw uint16) bool {
		fields := Fields()
		fs := fields[int(idx)%len(fields)]
		v := float64(raw) / 65535 // in [0,1]
		if fs.Name == "apl" {
			v = 1 + v*24
		}
		if fs.Name == "nshd" {
			v *= 7
		}
		p, err := MiddleParams().With(fs.Name, v)
		if err != nil {
			return false
		}
		return fs.Get(&p) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
