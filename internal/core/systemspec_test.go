package core

import "testing"

func TestSystemSpecAnchorsTables(t *testing.T) {
	// The default spec IS Table 1 / Table 9.
	bus := SystemSpec{}.Table()
	for _, op := range Ops() {
		if bus.Cost(op) != BusCosts().Cost(op) {
			t.Errorf("bus %v: spec %+v != Table 1 %+v", op, bus.Cost(op), BusCosts().Cost(op))
		}
	}
	for _, stages := range []int{2, 8} {
		net := SystemSpec{Stages: stages}.Table()
		for _, op := range Ops() {
			if net.Defines(op) != NetworkCosts(stages).Defines(op) ||
				net.Cost(op) != NetworkCosts(stages).Cost(op) {
				t.Errorf("network n=%d %v differs from Table 9", stages, op)
			}
		}
	}
}

func TestSystemSpecMemoryLatencyScaling(t *testing.T) {
	slow := SystemSpec{MemoryCycles: 8}.Table()
	fast := SystemSpec{MemoryCycles: 2}.Table()
	// Memory-latency delta reaches misses and read-throughs...
	if got := slow.Cost(OpCleanMissMem).Interconnect - fast.Cost(OpCleanMissMem).Interconnect; got != 6 {
		t.Errorf("clean miss latency delta = %g, want 6", got)
	}
	if got := slow.Cost(OpReadThrough).Interconnect - fast.Cost(OpReadThrough).Interconnect; got != 6 {
		t.Errorf("read-through latency delta = %g, want 6", got)
	}
	// ...but not posted writes.
	if slow.Cost(OpWriteThrough) != fast.Cost(OpWriteThrough) {
		t.Error("posted write-through must not wait on memory")
	}
	if slow.Cost(OpDirtyFlush) != fast.Cost(OpDirtyFlush) {
		t.Error("posted write-back must not wait on memory")
	}
	// Interconnect <= CPU across the space.
	for _, spec := range []SystemSpec{
		{MemoryCycles: 1}, {MemoryCycles: 16, BlockWords: 8},
		{Stages: 6, MemoryCycles: 10}, {Stages: 3, BlockWords: 2, MemoryCycles: 5},
	} {
		tab := spec.Table()
		for _, op := range Ops() {
			c := tab.Cost(op)
			if c.Interconnect > c.CPU {
				t.Errorf("%s %v: interconnect %g > cpu %g", tab.Name, op, c.Interconnect, c.CPU)
			}
		}
	}
}

func TestSlowMemoryHurtsNoCacheMost(t *testing.T) {
	// No-Cache pays the memory latency on every shared load;
	// cache-based schemes only on misses. Slowing memory 2 -> 10
	// cycles must degrade No-Cache by a larger factor than Dragon.
	p := MiddleParams()
	degradation := func(s Scheme) float64 {
		fast, err := BusPower(s, p, SystemSpec{MemoryCycles: 2}.Table(), 16)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := BusPower(s, p, SystemSpec{MemoryCycles: 10}.Table(), 16)
		if err != nil {
			t.Fatal(err)
		}
		return slow / fast
	}
	if dNC, dDragon := degradation(NoCache{}), degradation(Dragon{}); dNC >= dDragon {
		t.Errorf("No-Cache retains %.2f of its power, Dragon %.2f — expected No-Cache to suffer more", dNC, dDragon)
	}
}
