package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func demand(t *testing.T, s Scheme, p Params, costs *CostTable) Demand {
	t.Helper()
	d, err := ComputeDemand(s, p, costs)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return d
}

// Hand-computed anchors at the all-middle workload of Table 7 with the
// Table 1 bus costs.
func TestDemandMiddleAnchors(t *testing.T) {
	p := MiddleParams()
	bus := BusCosts()
	cases := []struct {
		scheme Scheme
		c, b   float64
	}{
		{Base{}, 1.06912, 0.04992},
		{NoCache{}, 1.37653, 0.28548},
		{SoftwareFlush{}, 1.1774492, 0.1198973},
		{Dragon{}, 1.1133895, 0.0645645},
	}
	for _, tc := range cases {
		d := demand(t, tc.scheme, p, bus)
		if !approx(d.CPU, tc.c, 1e-5) {
			t.Errorf("%s: c = %.7f, want %.7f", tc.scheme.Name(), d.CPU, tc.c)
		}
		if !approx(d.Interconnect, tc.b, 1e-5) {
			t.Errorf("%s: b = %.7f, want %.7f", tc.scheme.Name(), d.Interconnect, tc.b)
		}
	}
}

func TestBaseFrequenciesTable3(t *testing.T) {
	p := MiddleParams()
	fr, err := Base{}.Frequencies(p)
	if err != nil {
		t.Fatal(err)
	}
	m := freqMap(fr)
	miss := p.LS*p.MsDat + p.MsIns
	if !approx(m[OpCleanMissMem], miss*(1-p.MD), 1e-12) {
		t.Errorf("clean miss = %g", m[OpCleanMissMem])
	}
	if !approx(m[OpDirtyMissMem], miss*p.MD, 1e-12) {
		t.Errorf("dirty miss = %g", m[OpDirtyMissMem])
	}
	if m[OpInstr] != 1 {
		t.Errorf("instr freq = %g, want 1", m[OpInstr])
	}
}

func TestNoCacheFrequenciesTable4(t *testing.T) {
	p := MiddleParams()
	m := freqMap(mustFreqs(t, NoCache{}, p))
	if !approx(m[OpReadThrough], p.LS*p.Shd*(1-p.WR), 1e-12) {
		t.Errorf("read-through = %g", m[OpReadThrough])
	}
	if !approx(m[OpWriteThrough], p.LS*p.Shd*p.WR, 1e-12) {
		t.Errorf("write-through = %g", m[OpWriteThrough])
	}
	// Only unshared data can miss.
	miss := p.LS*p.MsDat*(1-p.Shd) + p.MsIns
	if !approx(m[OpCleanMissMem]+m[OpDirtyMissMem], miss, 1e-12) {
		t.Errorf("total miss = %g, want %g", m[OpCleanMissMem]+m[OpDirtyMissMem], miss)
	}
}

func TestSoftwareFlushFrequenciesTable5(t *testing.T) {
	p := MiddleParams()
	m := freqMap(mustFreqs(t, SoftwareFlush{}, p))
	f := p.LS * p.Shd / p.APL
	if !approx(m[OpCleanFlush], f*(1-p.MdShd), 1e-12) {
		t.Errorf("clean flush = %g, want %g", m[OpCleanFlush], f*(1-p.MdShd))
	}
	if !approx(m[OpDirtyFlush], f*p.MdShd, 1e-12) {
		t.Errorf("dirty flush = %g, want %g", m[OpDirtyFlush], f*p.MdShd)
	}
	// The re-fetch effect: clean misses exceed the unshared-only rate
	// by exactly one miss per flush.
	unsharedMiss := p.LS*p.MsDat*(1-p.Shd) + p.MsIns*(1+f)
	if !approx(m[OpCleanMissMem], unsharedMiss*(1-p.MD)+f, 1e-12) {
		t.Errorf("clean miss = %g, want %g", m[OpCleanMissMem], unsharedMiss*(1-p.MD)+f)
	}
}

func TestSoftwareFlushAPLOne(t *testing.T) {
	// At apl = 1 every shared reference flushes and re-misses; the
	// paper says both CPU and bus demand then exceed No-Cache's.
	p, err := MiddleParams().With("apl", 1)
	if err != nil {
		t.Fatal(err)
	}
	bus := BusCosts()
	sf := demand(t, SoftwareFlush{}, p, bus)
	nc := demand(t, NoCache{}, MiddleParams(), bus)
	if sf.CPU <= nc.CPU {
		t.Errorf("apl=1: SF cpu %g should exceed No-Cache cpu %g", sf.CPU, nc.CPU)
	}
	if sf.Interconnect <= nc.Interconnect {
		t.Errorf("apl=1: SF bus %g should exceed No-Cache bus %g", sf.Interconnect, nc.Interconnect)
	}
}

func TestSoftwareFlushHighAPLApproachesNoSharingCost(t *testing.T) {
	// As apl grows the sharing overhead vanishes: demand tends to the
	// unshared-miss-only level.
	p, err := MiddleParams().With("apl", 1e9)
	if err != nil {
		t.Fatal(err)
	}
	d := demand(t, SoftwareFlush{}, p, BusCosts())
	miss := p.LS*p.MsDat*(1-p.Shd) + p.MsIns
	wantC := 1 + miss*(1-p.MD)*10 + miss*p.MD*14
	if !approx(d.CPU, wantC, 1e-6) {
		t.Errorf("apl->inf: c = %g, want %g", d.CPU, wantC)
	}
}

func TestDragonFrequenciesTable6(t *testing.T) {
	p := MiddleParams()
	m := freqMap(mustFreqs(t, Dragon{}, p))
	bcast := p.LS * p.Shd * p.WR * p.OPres
	if !approx(m[OpWriteBroadcast], bcast, 1e-12) {
		t.Errorf("write broadcast = %g, want %g", m[OpWriteBroadcast], bcast)
	}
	if !approx(m[OpCycleSteal], bcast*p.NShd, 1e-12) {
		t.Errorf("cycle steal = %g, want %g", m[OpCycleSteal], bcast*p.NShd)
	}
	// Total data+instruction misses are conserved: splitting between
	// memory and cache sources must not change the total.
	totalMiss := p.LS*p.MsDat + p.MsIns
	got := m[OpCleanMissMem] + m[OpDirtyMissMem] + m[OpCleanMissCache] + m[OpDirtyMissCache]
	if !approx(got, totalMiss, 1e-12) {
		t.Errorf("total misses = %g, want %g", got, totalMiss)
	}
	// Cache-supplied fraction is shd*(1-oclean) of data misses.
	cacheMiss := p.LS * p.MsDat * p.Shd * (1 - p.OClean)
	if !approx(m[OpCleanMissCache]+m[OpDirtyMissCache], cacheMiss, 1e-12) {
		t.Errorf("cache-supplied misses = %g, want %g", m[OpCleanMissCache]+m[OpDirtyMissCache], cacheMiss)
	}
}

func TestSchemesIdenticalWithoutSharing(t *testing.T) {
	// Paper Section 5.1: "If shd = 0 the schemes are identical" (with
	// apl irrelevant and Dragon's extras vanishing).
	p := MiddleParams()
	p.Shd = 0
	bus := BusCosts()
	base := demand(t, Base{}, p, bus)
	for _, s := range []Scheme{NoCache{}, SoftwareFlush{}, Dragon{}} {
		d := demand(t, s, p, bus)
		if !approx(d.CPU, base.CPU, 1e-12) || !approx(d.Interconnect, base.Interconnect, 1e-12) {
			t.Errorf("%s: demand (%g,%g) != base (%g,%g) at shd=0",
				s.Name(), d.CPU, d.Interconnect, base.CPU, base.Interconnect)
		}
	}
}

func TestBaseIsCheapest(t *testing.T) {
	// Base incurs no coherence overhead, so it lower-bounds c and b
	// for every scheme at every Table 7 level.
	bus := BusCosts()
	for _, l := range Levels() {
		p := ParamsAt(l)
		base := demand(t, Base{}, p, bus)
		for _, s := range []Scheme{NoCache{}, SoftwareFlush{}, Dragon{}} {
			d := demand(t, s, p, bus)
			if d.CPU < base.CPU-1e-12 {
				t.Errorf("level %v: %s cpu %g below base %g", l, s.Name(), d.CPU, base.CPU)
			}
		}
	}
}

func TestComputeDemandInvariants(t *testing.T) {
	// Property: for random valid params, every scheme yields c >= 1,
	// 0 <= b <= c, and all frequencies non-negative.
	schemes := []Scheme{Base{}, NoCache{}, SoftwareFlush{}, Dragon{}, Directory{}}
	bus := BusCosts()
	f := func(a, b2, c2, d2, e, f2, g, h, i, j uint8, k uint8) bool {
		p := Params{
			LS:     float64(a) / 255,
			MsDat:  float64(b2) / 255 * 0.1,
			MsIns:  float64(c2) / 255 * 0.01,
			MD:     float64(d2) / 255,
			Shd:    float64(e) / 255,
			WR:     float64(f2) / 255,
			APL:    1 + float64(g)/255*30,
			MdShd:  float64(h) / 255,
			OClean: float64(i) / 255,
			OPres:  float64(j) / 255,
			NShd:   float64(k) / 255 * 7,
		}
		for _, s := range schemes {
			freqs, err := s.Frequencies(p)
			if err != nil {
				return false
			}
			for _, fr := range freqs {
				if fr.Freq < 0 {
					return false
				}
			}
			d, err := ComputeDemand(s, p, bus)
			if err != nil {
				return false
			}
			if d.CPU < 1 || d.Interconnect < 0 || d.Interconnect > d.CPU {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestComputeDemandRejectsInvalidParams(t *testing.T) {
	p := MiddleParams()
	p.LS = 2
	if _, err := ComputeDemand(Base{}, p, BusCosts()); !errors.Is(err, ErrInvalidParams) {
		t.Errorf("want ErrInvalidParams, got %v", err)
	}
}

func TestDragonUnsupportedOnNetwork(t *testing.T) {
	_, err := ComputeDemand(Dragon{}, MiddleParams(), NetworkCosts(4))
	if !errors.Is(err, ErrUnsupported) {
		t.Errorf("want ErrUnsupported, got %v", err)
	}
}

func TestSoftwareSchemesSupportedOnNetwork(t *testing.T) {
	net := NetworkCosts(8)
	for _, s := range []Scheme{Base{}, NoCache{}, SoftwareFlush{}, Directory{}} {
		if _, err := ComputeDemand(s, MiddleParams(), net); err != nil {
			t.Errorf("%s on network: %v", s.Name(), err)
		}
	}
}

func TestNewSchemeAndNames(t *testing.T) {
	ids := []SchemeID{SchemeBase, SchemeNoCache, SchemeSoftwareFlush, SchemeDragon, SchemeDirectory}
	wantNames := []string{"Base", "No-Cache", "Software-Flush", "Dragon", "Directory"}
	for i, id := range ids {
		s, err := NewScheme(id)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != wantNames[i] {
			t.Errorf("id %d: name %q, want %q", id, s.Name(), wantNames[i])
		}
		if id.String() != wantNames[i] {
			t.Errorf("id %d: String %q, want %q", id, id.String(), wantNames[i])
		}
	}
	if _, err := NewScheme(SchemeID(42)); err == nil {
		t.Error("want error for unknown id")
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range []string{
		"base", "nocache", "swflush", "dragon", "directory", "No-Cache", "Software-Flush",
		"hybrid", "winv", "mesi", "hybrid-update", "swflush-prio", "priority",
	} {
		if _, err := SchemeByName(name); err != nil {
			t.Errorf("%q: %v", name, err)
		}
	}
	if _, err := SchemeByName("firefly"); err == nil {
		t.Error("want error for unknown name")
	}
}

func TestPaperSchemes(t *testing.T) {
	s := PaperSchemes()
	if len(s) != 4 {
		t.Fatalf("got %d schemes, want 4", len(s))
	}
	if s[0].Name() != "Base" || s[1].Name() != "Dragon" {
		t.Error("presentation order wrong")
	}
}

func freqMap(fr []OpFreq) map[Op]float64 {
	m := make(map[Op]float64, len(fr))
	for _, f := range fr {
		m[f.Op] += f.Freq
	}
	return m
}

func mustFreqs(t *testing.T, s Scheme, p Params) []OpFreq {
	t.Helper()
	fr, err := s.Frequencies(p)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}
