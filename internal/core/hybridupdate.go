package core

import "fmt"

// HybridUpdate is an EXTENSION, not part of the paper's model: a tunable
// snoopy hybrid of the update (Dragon) and invalidate (Write-Invalidate)
// policies, after the hybrid update/invalidate protocols studied by
// Dovgopol & Rosonke (PAPERS.md). A store to a shared block present
// elsewhere is handled as a word broadcast (update) with probability
// UpdateFrac and as an invalidation otherwise — modelling a per-block
// competitive threshold that updates hot blocks and invalidates cold
// ones. UpdateFrac = 1 degenerates to Dragon's write policy,
// UpdateFrac = 0 to Write-Invalidate's.
type HybridUpdate struct {
	// UpdateFrac in [0,1] is the share of remote-present stores handled
	// as updates (broadcasts); the rest invalidate.
	UpdateFrac float64
}

// Name implements Scheme.
func (HybridUpdate) Name() string { return "Hybrid-Update" }

// String includes the split for diagnostics and cache keys.
func (h HybridUpdate) String() string { return fmt.Sprintf("Hybrid-Update(update=%.2f)", h.UpdateFrac) }

// Frequencies implements Scheme: the Dragon formulas applied to the
// update share of remote-present stores and the Write-Invalidate
// formulas applied to the rest. Only the invalidate share adds re-fetch
// misses; only the update share broadcasts and steals cycles.
func (h HybridUpdate) Frequencies(p Params) ([]OpFreq, error) {
	if !(h.UpdateFrac >= 0 && h.UpdateFrac <= 1) { // rejects NaN too
		return nil, fmt.Errorf("%w: hybrid update fraction %g not in [0,1]", ErrInvalidParams, h.UpdateFrac)
	}
	w := p.LS * p.Shd * p.WR * p.OPres
	upd := w * h.UpdateFrac
	inval := w * (1 - h.UpdateFrac)
	fromCache := p.Shd * (1 - p.OClean)
	dataMiss := p.LS*p.MsDat + inval
	memMiss := dataMiss*(1-fromCache) + p.MsIns
	cacheMiss := dataMiss * fromCache
	return []OpFreq{
		{OpInstr, 1},
		{OpCleanMissMem, memMiss * (1 - p.MD)},
		{OpDirtyMissMem, memMiss * p.MD},
		{OpWriteBroadcast, upd},
		{OpCleanMissCache, cacheMiss * (1 - p.MD)},
		{OpDirtyMissCache, cacheMiss * p.MD},
		{OpCycleSteal, upd * p.NShd},
		{OpInvalidate, inval},
	}, nil
}
