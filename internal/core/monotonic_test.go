package core

import (
	"testing"
	"testing/quick"
)

// Monotonicity properties of the model: more work can never yield more
// processing power. Each test perturbs one parameter upward at a random
// operating point and checks power does not increase (or the documented
// direction for apl).

// randomMidParams builds a valid random workload around the Table 7
// ranges.
func randomMidParams(a, b, c, d, e, f, g, h uint8) Params {
	p := MiddleParams()
	p.LS = 0.15 + float64(a)/255*0.3
	p.MsDat = 0.002 + float64(b)/255*0.03
	p.MsIns = 0.001 + float64(c)/255*0.004
	p.MD = float64(d) / 255 * 0.6
	p.Shd = float64(e) / 255 * 0.5
	p.WR = 0.05 + float64(f)/255*0.45
	p.APL = 1 + float64(g)/255*30
	p.MdShd = float64(h) / 255 * 0.6
	return p
}

func powerAt(t testingT, s Scheme, p Params, n int) float64 {
	pw, err := BusPower(s, p, BusCosts(), n)
	if err != nil {
		t.Fatalf("BusPower: %v", err)
	}
	return pw
}

type testingT interface {
	Fatalf(format string, args ...any)
}

func TestPowerMonotoneDecreasingInLoad(t *testing.T) {
	schemes := []Scheme{Base{}, NoCache{}, SoftwareFlush{}, Dragon{}, Hybrid{LockFrac: 0.3}, Directory{}}
	grows := []struct {
		name string
		bump func(*Params)
	}{
		{"msdat", func(p *Params) { p.MsDat = min1(p.MsDat * 1.5) }},
		{"mains", func(p *Params) { p.MsIns = min1(p.MsIns * 1.5) }},
		{"md", func(p *Params) { p.MD = min1(p.MD + 0.2) }},
	}
	f := func(a, b, c, d, e, f2, g, h uint8, nRaw uint8) bool {
		p := randomMidParams(a, b, c, d, e, f2, g, h)
		n := int(nRaw%16) + 1
		for _, s := range schemes {
			before := powerAt(quickT{}, s, p, n)
			for _, gr := range grows {
				q := p
				gr.bump(&q)
				after := powerAt(quickT{}, s, q, n)
				if after > before+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPowerMonotoneDecreasingInSharing: more sharing can only hurt — but
// ONLY for schemes whose shared-reference handling is unconditionally
// costlier than an unshared reference. Software-Flush (and hence Hybrid)
// are deliberately excluded: at high apl a flushed shared datum misses
// once per apl references, which can be *cheaper* than an unshared
// datum's msdat misses — the same effect that lets Software-Flush beat
// Dragon in paper Figure 7. The random property hunt above caught
// exactly this when shd was included for all schemes.
func TestPowerMonotoneDecreasingInSharing(t *testing.T) {
	schemes := []Scheme{Base{}, NoCache{}, Dragon{}, Directory{}}
	f := func(a, b, c, d, e, f2, g, h uint8, nRaw uint8) bool {
		p := randomMidParams(a, b, c, d, e, f2, g, h)
		n := int(nRaw%16) + 1
		q := p
		q.Shd = min1(q.Shd + 0.15)
		r := p
		r.LS = min1(r.LS * 1.3)
		for _, s := range schemes {
			before := powerAt(quickT{}, s, p, n)
			if powerAt(quickT{}, s, q, n) > before+1e-9 {
				return false
			}
			if powerAt(quickT{}, s, r, n) > before+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSoftwareFlushSharingCanPay pins the counterexample the property
// hunt surfaced: with a high miss rate and high apl, marking more data
// shared INCREASES Software-Flush's power, because flush-managed data
// misses once per apl references instead of once per 1/msdat.
func TestSoftwareFlushSharingCanPay(t *testing.T) {
	// High miss rate, expensive (often dirty) unshared misses, cheap
	// (rarely dirty) flushes, lazy flushing: shared handling wins.
	p := MiddleParams()
	p.MsDat = 0.03
	p.MD = 0.45
	p.MdShd = 0.05
	p.APL = 30
	lo, err := BusPower(SoftwareFlush{}, p, BusCosts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	q := p
	q.Shd = min1(q.Shd + 0.2)
	hi, err := BusPower(SoftwareFlush{}, q, BusCosts(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Errorf("expected more sharing to pay off at high apl/msdat: %.3f -> %.3f", lo, hi)
	}
}

func TestPowerMonotoneIncreasingInAPL(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h uint8, nRaw uint8) bool {
		p := randomMidParams(a, b, c, d, e, f2, g, h)
		n := int(nRaw%16) + 1
		before := powerAt(quickT{}, SoftwareFlush{}, p, n)
		q := p
		q.APL *= 2
		after := powerAt(quickT{}, SoftwareFlush{}, q, n)
		return after >= before-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPowerMonotoneInProcessors(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h uint8) bool {
		p := randomMidParams(a, b, c, d, e, f2, g, h)
		for _, s := range []Scheme{Dragon{}, SoftwareFlush{}, NoCache{}} {
			pts, err := EvaluateBus(s, p, BusCosts(), 24)
			if err != nil {
				return false
			}
			for i := 1; i < len(pts); i++ {
				if pts[i].Power < pts[i-1].Power-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// quickT panics on fatal errors inside quick.Check closures (where *T is
// unavailable); a model error at a valid point is itself a bug.
type quickT struct{}

func (quickT) Fatalf(format string, args ...any) {
	panic("unexpected model error in property test")
}

func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
