package gw

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"

	"swcc/internal/obs"
)

// /v1/sweep fan-out: one client batch carries many grid points, and
// under affinity each point has its own owner backend. Forwarding the
// whole batch to any single backend would make every other backend's
// share of the grid a guaranteed miss there, so the gateway partitions
// the points by owner, sends the sub-batches concurrently, and
// reassembles the results in caller order — the client sees exactly the
// response one backend would have produced, while every point was
// solved where its curve lives.

// sweepBatch is the tolerant decode of a /v1/sweep body: points stay
// raw, both because the gateway only needs each point's routing key and
// because forwarding the original bytes preserves whatever the backend
// would have said about them.
type sweepBatch struct {
	Points []json.RawMessage `json:"points"`
}

// sweepResult is the slice of a backend's /v1/sweep response the
// gateway needs for reassembly.
type sweepResult struct {
	Results []json.RawMessage `json:"results"`
}

// subFailure is one failed sub-batch, carried to error remapping.
type subFailure struct {
	status  int
	body    []byte
	indexes []int // original caller indexes, sub-batch order
}

func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.writeErr(w, http.StatusBadRequest, fmt.Sprintf("gw: reading body: %v", err))
		return
	}
	var batch sweepBatch
	// Malformed or empty batches forward whole: the backend owns the
	// error contract. Round-robin forwards whole too — the control
	// policy measures what routing ignores keys, not a half-affinity
	// hybrid. A single healthy backend makes partitioning a no-op.
	if json.Unmarshal(body, &batch) != nil || len(batch.Points) == 0 ||
		g.cfg.Policy == PolicyRoundRobin || len(g.healthySet()) == 1 {
		g.forward(w, r, body, rawKey(body), proxyOpts{retriable: true})
		return
	}

	keys := make([]uint64, len(batch.Points))
	for i, pt := range batch.Points {
		if k, ok := pointKey(pt); ok {
			keys[i] = k
		} else {
			g.keyFallbacks.Add(1)
			keys[i] = rawKey(pt)
		}
	}
	// Partition by owner over the current healthy set. Group order
	// follows first appearance, so reassembly and error precedence are
	// deterministic for a given batch and fleet state.
	groupOf := map[*backend]int{}
	var groups []*subFailure // indexes filled here; status/body after send
	var groupKeys []uint64
	for i, key := range keys {
		b := g.rank(key)[0]
		gi, ok := groupOf[b]
		if !ok {
			gi = len(groups)
			groupOf[b] = gi
			groups = append(groups, &subFailure{})
			groupKeys = append(groupKeys, key)
		}
		groups[gi].indexes = append(groups[gi].indexes, i)
	}
	if len(groups) == 1 {
		g.forward(w, r, body, keys[0], proxyOpts{retriable: true})
		return
	}

	// One request ID spans the whole fan-out: every sub-batch carries it
	// to its backend, so the backends' logs for one client batch join up.
	trace := r.Header.Get(traceHeader)
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	w.Header().Set(traceHeader, trace)

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	results := make([]json.RawMessage, len(batch.Points))
	var wg sync.WaitGroup
	for gi := range groups {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			grp := groups[gi]
			sub, err := json.Marshal(sweepBatch{Points: pick(batch.Points, grp.indexes)})
			if err != nil {
				grp.status, grp.body = http.StatusInternalServerError, []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
				return
			}
			// Rank by the group's key: the owner leads, and a transport
			// failure retries the group on the next-ranked survivor.
			resp, _, release, err := g.attempt(ctx, g.rank(groupKeys[gi]), groupKeys[gi], http.MethodPost, r.URL.RequestURI(), sub, trace, proxyOpts{retriable: true})
			if err != nil {
				g.badGateway.Add(1)
				grp.status, grp.body = http.StatusBadGateway, []byte(fmt.Sprintf("{\"error\":%q}", "gw: no backend answered: "+err.Error()))
				return
			}
			defer release()
			defer resp.Body.Close()
			rb, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
			if err != nil {
				grp.status, grp.body = http.StatusBadGateway, []byte(fmt.Sprintf("{\"error\":%q}", "gw: reading backend response: "+err.Error()))
				return
			}
			if resp.StatusCode != http.StatusOK {
				grp.status, grp.body = resp.StatusCode, rb
				return
			}
			var sr sweepResult
			if err := json.Unmarshal(rb, &sr); err != nil || len(sr.Results) != len(grp.indexes) {
				grp.status, grp.body = http.StatusBadGateway, []byte(fmt.Sprintf("{\"error\":%q}",
					fmt.Sprintf("gw: backend returned %d results for %d points", len(sr.Results), len(grp.indexes))))
				return
			}
			for j, idx := range grp.indexes {
				results[idx] = sr.Results[j]
			}
		}(gi)
	}
	wg.Wait()

	// Failure precedence mirrors a single backend's: the error naming
	// the lowest original point index wins, its sub-batch-local index
	// rewritten so the client is told which of ITS points failed.
	var failed *subFailure
	for _, grp := range groups {
		if grp.status != 0 && (failed == nil || grp.indexes[0] < failed.indexes[0]) {
			failed = grp
		}
	}
	if failed != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(failed.status)
		w.Write(remapPointErr(failed.body, failed.indexes))
		return
	}

	w.Header().Set("Content-Type", "application/json")
	out := struct {
		Count   int               `json:"count"`
		Results []json.RawMessage `json:"results"`
	}{Count: len(results), Results: results}
	json.NewEncoder(w).Encode(out)
}

// pick selects the points at the given indexes, in order.
func pick(points []json.RawMessage, idx []int) []json.RawMessage {
	out := make([]json.RawMessage, len(idx))
	for j, i := range idx {
		out[j] = points[i]
	}
	return out
}

// pointIndexRE matches the backend's per-point error prefix.
var pointIndexRE = regexp.MustCompile(`points\[(\d+)\]`)

// remapPointErr rewrites a sub-batch's "points[K]" error indexes back
// to the caller's original point positions, so a validation error from
// a partitioned batch names the same point a single backend would have
// named. Indexes that cannot be mapped pass through untouched.
func remapPointErr(body []byte, indexes []int) []byte {
	return pointIndexRE.ReplaceAllFunc(body, func(m []byte) []byte {
		sub := pointIndexRE.FindSubmatch(m)
		k, err := strconv.Atoi(string(sub[1]))
		if err != nil || k < 0 || k >= len(indexes) {
			return m
		}
		return []byte(fmt.Sprintf("points[%d]", indexes[k]))
	})
}
