package gw

import (
	"container/list"
	"sync"
)

// The gateway response cache: the front tier's own memo layer for
// idempotent hot keys. A backend already caches its solved curves, but
// every repeat of a hot single-point request still costs a proxied
// round trip; caching the finished response bytes at the gateway
// answers those without touching the fleet at all. Entries are keyed by
// the request's canonical cache key (path, scheme identity, canonical
// params, procs, point shape) PLUS the answering backend's model
// fingerprint, so a response computed by one model build can never be
// served on behalf of another — the same snapshot-compatibility
// contract the backends apply to their own persisted caches. The whole
// cache is dropped on a backend-set reload: the fleet behind the cached
// bytes changed, so the cheap, always-correct move is to refill.

// respEntry is one cached response.
type respEntry struct {
	key         uint64
	fp          string // model fingerprint of the backend that produced it
	contentType string
	backend     string // backend URL, echoed in the response header
	body        []byte
}

// respCache is a bounded LRU of finished responses. All methods are
// safe for concurrent use.
type respCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List               // front = most recently used
	entries map[uint64]*list.Element // key -> element holding *respEntry

	hits, misses, invalidations int64 // guarded by mu
}

// newRespCache returns an empty cache bounded to capacity entries.
func newRespCache(capacity int) *respCache {
	return &respCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[uint64]*list.Element, capacity),
	}
}

// lookup returns the entry cached under (key, fp), if any, promoting it
// to most recently used. An entry stored under the same key but a
// different model fingerprint is a miss: the fleet no longer runs the
// build that produced it.
func (c *respCache) lookup(key uint64, fp string) (*respEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok || el.Value.(*respEntry).fp != fp {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*respEntry), true
}

// store caches one finished response under (key, fp), replacing any
// entry for the key and evicting the least recently used entry past
// capacity.
func (c *respCache) store(key uint64, fp, contentType, backend string, body []byte) {
	e := &respEntry{key: key, fp: fp, contentType: contentType, backend: backend, body: body}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(e)
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*respEntry).key)
	}
}

// invalidate drops every entry — called when the backend set changes.
func (c *respCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.entries)
	c.invalidations++
}

// stats snapshots the cache's size and counters for the metrics page.
func (c *respCache) stats() (entries int, hits, misses, invalidations int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.hits, c.misses, c.invalidations
}
