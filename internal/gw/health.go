package gw

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"time"

	"swcc/internal/serve"
)

// probe health-checks one backend against its /readyz: an HTTP 200
// means ready. A not-ready or unreachable backend accumulates
// consecutive failures and is excluded at FailThreshold; a single
// success re-admits it — exclusion is cautious, re-admission eager,
// because a re-admitted backend that flaps just gets excluded again
// while a healthy backend kept excluded sheds its whole key range onto
// the survivors for no reason. The warmth counters, advertised weight,
// and model fingerprint in the body are recorded either way (a shedding
// backend still reports its cache), so /healthz aggregation, the
// metrics page, and the response cache reflect the fleet's real state.
func (g *Gateway) probe(ctx context.Context, b *backend) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.CheckTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err != nil {
		g.probeFailed(b, err)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.probeFailed(b, err)
		return
	}
	defer resp.Body.Close()
	var rz serve.ReadyzResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&rz); err == nil {
		warmth := rz.Cache
		b.warmth.Store(&warmth)
		if rz.Weight > 0 {
			b.advWeight.Store(math.Float64bits(rz.Weight))
		}
		if rz.ModelFingerprint != "" {
			fp := rz.ModelFingerprint
			b.modelFP.Store(&fp)
		}
	}
	if resp.StatusCode != http.StatusOK {
		g.probeFailed(b, nil)
		return
	}
	b.fails.Store(0)
	if b.healthy.CompareAndSwap(false, true) {
		g.log.Info("backend re-admitted", "backend", b.url)
	}
}

// probeFailed records one failed probe and excludes the backend once
// failures reach the threshold.
func (g *Gateway) probeFailed(b *backend, err error) {
	if b.fails.Add(1) >= int32(g.cfg.FailThreshold) {
		if b.healthy.CompareAndSwap(true, false) {
			g.log.Warn("backend excluded", "backend", b.url, "err", err)
		}
	}
}

// backendHealth is one backend's row in the gateway's /healthz body.
type backendHealth struct {
	URL     string             `json:"url"`
	Healthy bool               `json:"healthy"`
	Weight  float64            `json:"weight"`
	Routes  int64              `json:"routes"`
	Sends   int64              `json:"sends"`
	Cache   *serve.ReadyzCache `json:"cache,omitempty"`
}

// gwHealth is the gateway's /healthz body: its own liveness plus the
// aggregated fleet view.
type gwHealth struct {
	Status        string          `json:"status"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Policy        string          `json:"policy"`
	Reloads       int64           `json:"reloads"`
	Healthy       int             `json:"healthy_backends"`
	Backends      []backendHealth `json:"backends"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := gwHealth{
		Status:        "ok",
		UptimeSeconds: time.Since(g.start).Seconds(),
		Policy:        g.cfg.Policy,
		Reloads:       g.reloads.Load(),
	}
	for _, b := range g.snapshot() {
		row := backendHealth{
			URL: b.url, Healthy: b.healthy.Load(), Weight: b.effWeight(),
			Routes: b.routes.Load(), Sends: b.sends.Load(), Cache: b.warmth.Load(),
		}
		if row.Healthy {
			h.Healthy++
		}
		h.Backends = append(h.Backends, row)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// handleReadyz reports the gateway ready iff at least one backend is
// healthy: a gateway with zero live backends should be drained by its
// own front tier, not fed requests it can only 502.
func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, b := range g.snapshot() {
		if b.healthy.Load() {
			healthy++
		}
	}
	code := http.StatusOK
	ready := true
	if healthy == 0 {
		code = http.StatusServiceUnavailable
		ready = false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"ready": ready, "healthy_backends": healthy})
}
