package gw

import (
	"math"
)

// Live backend-set reload: a fleet changes shape — capacity added,
// hosts retired, weights retuned — without the gateway restarting and
// cold-starting its view of the world. Reload swaps the routing set
// wholesale behind an atomic pointer, so every request sees either the
// old fleet or the new one, never a half-applied mix. Backends present
// in both sets carry their state across (health, warmth, counters, an
// already-running probe loop): a reload that merely adds one host must
// not re-probe, re-warm, or zero the ninety-nine survivors. Removed
// backends drain instead of dying: they leave the routing set — no new
// request ranks them — while requests already in flight hold their own
// reference to the backend and finish over the shared transport.

// ReloadResult summarizes what one Reload changed.
type ReloadResult struct {
	// Added and Removed list the backend URLs that entered and left the
	// routing set.
	Added, Removed []string
	// Reweighted lists backends whose configured weight changed.
	Reweighted []string
}

// Changed reports whether the reload altered the routing set at all.
func (r ReloadResult) Changed() bool {
	return len(r.Added)+len(r.Removed)+len(r.Reweighted) > 0
}

// Reload replaces the backend set with the given specs (same
// "URL[=WEIGHT]" syntax as Config.Backends). Backends in both the old
// and new sets keep their identity and state; added backends join
// healthy and get a probe loop (when Run is active) whose first round
// corrects that within CheckInterval; removed backends stop being
// ranked but finish their in-flight requests. A membership change also
// drops the response cache — its entries were computed by a fleet that
// no longer exists. On a spec error the current set is left untouched.
func (g *Gateway) Reload(specs []string) (ReloadResult, error) {
	parsed, err := parseBackends(specs)
	if err != nil {
		return ReloadResult{}, err
	}

	g.mu.Lock()
	old := g.snapshot()
	byURL := make(map[string]*backend, len(old))
	for _, b := range old {
		byURL[b.url] = b
	}
	var res ReloadResult
	next := make([]*backend, 0, len(parsed))
	for _, nb := range parsed {
		ob, ok := byURL[nb.url]
		if !ok {
			res.Added = append(res.Added, nb.url)
			if g.runCtx != nil {
				g.startProbeLoop(g.runCtx, nb)
			}
			next = append(next, nb)
			continue
		}
		delete(byURL, ob.url)
		if w := nb.weight.Load(); w != ob.weight.Load() {
			ob.weight.Store(w)
			res.Reweighted = append(res.Reweighted, ob.url)
		}
		next = append(next, ob)
	}
	for _, ob := range byURL {
		res.Removed = append(res.Removed, ob.url)
		if ob.stop != nil {
			ob.stop()
		}
	}
	g.backends.Store(&next)
	g.reloads.Add(1)
	g.mu.Unlock()

	if g.cache != nil && len(res.Added)+len(res.Removed) > 0 {
		g.cache.invalidate()
	}
	if res.Changed() {
		g.log.Info("backend set reloaded",
			"backends", len(next), "added", res.Added, "removed", res.Removed,
			"reweighted", res.Reweighted)
	}
	return res, nil
}

// Weights returns each current backend's effective rendezvous weight by
// URL — the operator-facing view (/healthz, tests) of what the HRW
// score actually uses.
func (g *Gateway) Weights() map[string]float64 {
	out := map[string]float64{}
	for _, b := range g.snapshot() {
		out[b.url] = b.effWeight()
	}
	return out
}

// pinnedWeight returns the configured (spec-pinned) weight, or 0 when
// the backend adopts the advertised one.
func (b *backend) pinnedWeight() float64 {
	if bits := b.weight.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return 0
}
