package gw

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"swcc/internal/serve"
)

// newBackend boots one in-process cohered-equivalent backend.
func newBackend(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.NewServer(serve.Config{
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(s.Close)
	t.Cleanup(ts.Close)
	return s, ts
}

// newGateway builds a gateway over the given backend URLs with fast
// checks and quiet logs, and runs one synchronous probe round.
func newGateway(t *testing.T, policy string, urls ...string) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(Config{
		Backends: urls,
		Policy:   policy,
		Logger:   slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g.CheckNow(context.Background())
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

// postGW posts a JSON body through the gateway and returns the status,
// body, and the backend that answered.
func postGW(t *testing.T, ts *httptest.Server, path, body string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get(backendHeader)
}

// TestAffinityStableAndCanonical pins the affinity contract: the same
// request always routes to the same backend, and requests that are
// equivalent under canonicalization (a param the scheme ignores, the
// implicit vs explicit hybrid lock fraction) land together.
func TestAffinityStableAndCanonical(t *testing.T) {
	_, b1 := newBackend(t)
	_, b2 := newBackend(t)
	_, ts := newGateway(t, PolicyAffinity, b1.URL, b2.URL)

	body := `{"scheme": "dragon", "params": {"shd": 0.4}, "procs": 8}`
	code, data, first := postGW(t, ts, "/v1/bus", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, data)
	}
	if first == "" {
		t.Fatal("no backend header on proxied response")
	}
	for i := 0; i < 10; i++ {
		if _, _, b := postGW(t, ts, "/v1/bus", body); b != first {
			t.Fatalf("request %d routed to %s, first went to %s", i, b, first)
		}
	}

	// swflush ignores wr (flushes don't depend on the write ratio);
	// wr variants must co-locate.
	va := `{"scheme": "swflush", "params": {"shd": 0.3, "wr": 0.2}, "procs": 8}`
	vb := `{"scheme": "swflush", "params": {"shd": 0.3, "wr": 0.9}, "procs": 8}`
	_, _, ba := postGW(t, ts, "/v1/bus", va)
	_, _, bb := postGW(t, ts, "/v1/bus", vb)
	if ba != bb {
		t.Fatalf("canonically-equal requests split: %s vs %s", ba, bb)
	}

	// Hybrid with the default lock fraction spelled out is the same key.
	ha := `{"scheme": "hybrid", "procs": 8}`
	hb := `{"scheme": "hybrid", "lockfrac": 0.3, "procs": 8}`
	_, _, b3 := postGW(t, ts, "/v1/bus", ha)
	_, _, b4 := postGW(t, ts, "/v1/bus", hb)
	if b3 != b4 {
		t.Fatalf("hybrid default lockfrac split: %s vs %s", b3, b4)
	}

	// The same workload at different populations shares a curve — and
	// must share a backend.
	pa := `{"scheme": "dragon", "params": {"shd": 0.4}, "procs": 4}`
	pb := `{"scheme": "dragon", "params": {"shd": 0.4}, "procs": 32}`
	_, _, b5 := postGW(t, ts, "/v1/bus", pa)
	_, _, b6 := postGW(t, ts, "/v1/bus", pb)
	if b5 != b6 {
		t.Fatalf("same curve split across backends: %s vs %s", b5, b6)
	}
}

// TestAffinitySpreadsKeys sanity-checks that rendezvous hashing uses
// the whole fleet: across many distinct keys both backends serve some.
func TestAffinitySpreadsKeys(t *testing.T) {
	_, b1 := newBackend(t)
	_, b2 := newBackend(t)
	_, ts := newGateway(t, PolicyAffinity, b1.URL, b2.URL)

	seen := map[string]int{}
	for i := 0; i < 32; i++ {
		body := fmt.Sprintf(`{"scheme": "dragon", "params": {"shd": %g}, "procs": 8, "point": true}`, 0.1+float64(i)*0.025)
		code, data, b := postGW(t, ts, "/v1/bus", body)
		if code != http.StatusOK {
			t.Fatalf("status %d: %s", code, data)
		}
		seen[b]++
	}
	if len(seen) != 2 {
		t.Fatalf("32 distinct keys all routed to one backend: %v", seen)
	}
}

// TestRoundRobinRotates pins the control policy: consecutive identical
// requests alternate backends.
func TestRoundRobinRotates(t *testing.T) {
	_, b1 := newBackend(t)
	_, b2 := newBackend(t)
	_, ts := newGateway(t, PolicyRoundRobin, b1.URL, b2.URL)

	body := `{"scheme": "dragon", "procs": 8, "point": true}`
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		_, _, b := postGW(t, ts, "/v1/bus", body)
		seen[b]++
	}
	if len(seen) != 2 || seen[b1.URL] != 3 || seen[b2.URL] != 3 {
		t.Fatalf("round-robin did not rotate evenly: %v", seen)
	}
}

// TestRespillOnBackendDeath kills one backend mid-traffic: every
// request must still answer 200 (the first attempt against the corpse
// retries onto the survivor), the dead backend is excluded on the spot,
// and follow-up traffic routes to the survivor without further retries.
func TestRespillOnBackendDeath(t *testing.T) {
	_, b1 := newBackend(t)
	_, b2 := newBackend(t)
	g, ts := newGateway(t, PolicyAffinity, b1.URL, b2.URL)

	// Find keys for both owners while both are alive.
	bodies := make(map[string]string) // backend URL -> a body it owns
	for i := 0; i < 32 && len(bodies) < 2; i++ {
		body := fmt.Sprintf(`{"scheme": "dragon", "params": {"wr": %g}, "procs": 8, "point": true}`, 0.1+float64(i)*0.025)
		_, _, b := postGW(t, ts, "/v1/bus", body)
		if _, ok := bodies[b]; !ok {
			bodies[b] = body
		}
	}
	if len(bodies) != 2 {
		t.Fatal("could not find keys owned by both backends")
	}

	b2.Close() // the fleet loses a backend under load
	for url, body := range bodies {
		code, data, got := postGW(t, ts, "/v1/bus", body)
		if code != http.StatusOK {
			t.Fatalf("key owned by %s answered %d after backend death: %s", url, code, data)
		}
		if got != b1.URL {
			t.Fatalf("request routed to %s, want the survivor %s", got, b1.URL)
		}
	}
	if got := g.retries.Load(); got == 0 {
		t.Fatal("no retry recorded for the first attempt against the dead backend")
	}
	for _, b := range g.snapshot() {
		if b.url == b2.URL && b.healthy.Load() {
			t.Fatal("dead backend still marked healthy after transport failure")
		}
	}
	// Re-spill is deterministic and costs no further retries.
	before := g.retries.Load()
	for _, body := range bodies {
		if code, data, _ := postGW(t, ts, "/v1/bus", body); code != http.StatusOK {
			t.Fatalf("steady-state after re-spill: %d %s", code, data)
		}
	}
	if got := g.retries.Load(); got != before {
		t.Fatalf("steady-state re-spill still retrying: %d -> %d", before, got)
	}
	if g.respills.Load() == 0 {
		t.Fatal("respill counter never ticked")
	}
}

// TestProbeExclusionAndReadmission drives the /readyz-based health
// loop: a backend that turns not-ready is excluded after FailThreshold
// probes and re-admitted on the first healthy one.
func TestProbeExclusionAndReadmission(t *testing.T) {
	s1, b1 := newBackend(t)
	_, b2 := newBackend(t)
	g, _ := newGateway(t, PolicyAffinity, b1.URL, b2.URL)
	ctx := context.Background()

	s1.SetNotReady("draining")
	g.CheckNow(ctx) // one failure: still within threshold
	g.CheckNow(ctx) // second failure: excluded
	var bk1 *backend
	for _, b := range g.snapshot() {
		if b.url == b1.URL {
			bk1 = b
		}
	}
	if bk1.healthy.Load() {
		t.Fatal("not-ready backend still in the routing set after FailThreshold probes")
	}
	if len(g.healthySet()) != 1 {
		t.Fatalf("healthy set size %d, want 1", len(g.healthySet()))
	}

	s1.SetReady()
	g.CheckNow(ctx)
	if !bk1.healthy.Load() {
		t.Fatal("recovered backend not re-admitted on first healthy probe")
	}
	// Warmth was captured from the probe body.
	if bk1.warmth.Load() == nil {
		t.Fatal("probe did not record cache warmth")
	}
}

// TestSweepFanOut partitions a mixed batch across two backends and
// checks the reassembled response is exactly what one backend would
// have produced: same count, caller order, every point present.
func TestSweepFanOut(t *testing.T) {
	_, b1 := newBackend(t)
	_, b2 := newBackend(t)
	_, ts := newGateway(t, PolicyAffinity, b1.URL, b2.URL)

	var points []string
	for i := 0; i < 16; i++ {
		points = append(points, fmt.Sprintf(`{"scheme": "dragon", "params": {"shd": %g}, "procs": %d, "point": true}`, 0.1+float64(i)*0.05, 4+i))
	}
	body := `{"points": [` + strings.Join(points, ",") + `]}`

	code, data, _ := postGW(t, ts, "/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("fan-out status %d: %s", code, data)
	}
	var got struct {
		Count   int `json:"count"`
		Results []struct {
			Procs  int `json:"procs"`
			Points []struct {
				Processors int `json:"Processors"`
			} `json:"points"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("decoding fan-out response: %v", err)
	}
	if got.Count != 16 || len(got.Results) != 16 {
		t.Fatalf("count %d, results %d, want 16", got.Count, len(got.Results))
	}
	for i, r := range got.Results {
		if r.Procs != 4+i {
			t.Fatalf("result %d has procs %d: caller order not preserved", i, r.Procs)
		}
		if len(r.Points) != 1 || r.Points[0].Processors != 4+i {
			t.Fatalf("result %d carries wrong point: %+v", i, r)
		}
	}

	// Compare against a single backend answering the whole batch.
	resp, err := http.Post(b1.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	direct, _ := io.ReadAll(resp.Body)
	var want struct {
		Count   int               `json:"count"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(direct, &want); err != nil {
		t.Fatal(err)
	}
	var gotRaw struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &gotRaw); err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		var a, b any
		if err := json.Unmarshal(want.Results[i], &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(gotRaw.Results[i], &b); err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("result %d differs from single-backend answer:\n%s\nvs\n%s", i, aj, bj)
		}
	}
}

// TestSweepFanOutErrorRemap pins that a validation error in a
// partitioned batch names the caller's point index, not the sub-batch's.
func TestSweepFanOutErrorRemap(t *testing.T) {
	_, b1 := newBackend(t)
	_, b2 := newBackend(t)
	_, ts := newGateway(t, PolicyAffinity, b1.URL, b2.URL)

	// Enough valid points to force a split, with the last one invalid.
	var points []string
	for i := 0; i < 9; i++ {
		points = append(points, fmt.Sprintf(`{"scheme": "dragon", "params": {"shd": %g}, "procs": 8, "point": true}`, 0.1+float64(i)*0.1))
	}
	points = append(points, `{"scheme": "nosuchscheme", "procs": 8}`)
	body := `{"points": [` + strings.Join(points, ",") + `]}`

	code, data, _ := postGW(t, ts, "/v1/sweep", body)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, data)
	}
	if !strings.Contains(string(data), "points[9]") {
		t.Fatalf("error does not name the caller's index 9: %s", data)
	}
}

// TestJobsPinned pins the async-job subtree to one backend: a job
// submitted through the gateway must be findable through the gateway.
func TestJobsPinned(t *testing.T) {
	_, b1 := newBackend(t)
	_, b2 := newBackend(t)
	_, ts := newGateway(t, PolicyAffinity, b1.URL, b2.URL)

	code, data, first := postGW(t, ts, "/v1/jobs/sweep",
		`{"schemes": ["dragon"], "axis": "shd", "from": 0.1, "to": 0.9, "steps": 4, "procs": 4}`)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("job submit: %d %s", code, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		t.Fatalf("no job id in %s", data)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if got := resp.Header.Get(backendHeader); got != first {
				t.Fatalf("job status served by %s, submitted to %s", got, first)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not findable through the gateway: %d %s", sub.ID, resp.StatusCode, b)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGatewayReadyz pins gateway readiness: ready with a healthy fleet,
// not ready when every backend is gone.
func TestGatewayReadyz(t *testing.T) {
	_, b1 := newBackend(t)
	g, ts := newGateway(t, PolicyAffinity, b1.URL)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway not ready with a healthy backend: %d", resp.StatusCode)
	}

	b1.Close()
	g.CheckNow(context.Background())
	g.CheckNow(context.Background())
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gateway ready with zero live backends: %d", resp.StatusCode)
	}
}

// TestGatewayMetricsPage sanity-checks the metrics surface: every
// family renders from the first scrape, and route counts move.
func TestGatewayMetricsPage(t *testing.T) {
	_, b1 := newBackend(t)
	_, ts := newGateway(t, PolicyAffinity, b1.URL)
	postGW(t, ts, "/v1/bus", `{"scheme": "dragon", "procs": 4}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	page, _ := io.ReadAll(resp.Body)
	for _, family := range []string{
		"swcc_gw_backend_healthy", "swcc_gw_healthy_backends",
		"swcc_gw_backend_weight", "swcc_gw_backend_sends_total",
		"swcc_gw_routes_total", "swcc_gw_backend_responses_total",
		"swcc_gw_retries_total", "swcc_gw_respills_total",
		"swcc_gw_hedges_total", "swcc_gw_hedge_wins_total",
		"swcc_gw_reloads_total", "swcc_gw_response_cache_entries",
		"swcc_gw_response_cache_hits_total", "swcc_gw_response_cache_misses_total",
		"swcc_gw_response_cache_invalidations_total",
		"swcc_gw_key_fallbacks_total", "swcc_gw_bad_gateway_total",
		"swcc_gw_backend_cache_entries", "swcc_gw_backend_hit_ratio",
	} {
		if !strings.Contains(string(page), "# TYPE "+family+" ") {
			t.Errorf("family %s missing from scrape", family)
		}
	}
	if !strings.Contains(string(page), `swcc_gw_routes_total{backend=`) {
		t.Error("no per-backend route counter rendered")
	}
}
