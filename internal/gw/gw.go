// Package gw is the cache-affinity front tier: an HTTP gateway that
// routes each request to one of N cohered backends by rendezvous-hashing
// the request's canonical cache key, so every backend's sharded memo
// cache stays hot for its own key range instead of all replicas
// re-solving the same (scheme, params) working set. The paper's
// economics apply to the serving tier itself: performance is dominated
// by how often a request lands where its answer is already cached, and
// who services a request determines whether it is a hit.
//
// The gateway health-checks each backend's /readyz, excludes backends
// that fail repeatedly, re-admits them on recovery, and re-spills an
// excluded backend's keys deterministically to the next-ranked backend
// (rendezvous hashing moves only the dead backend's keys — the survivors'
// caches keep their ranges). /v1/sweep batches are partitioned by owner
// backend and reassembled in caller order. A round-robin policy exists
// as the control arm for benchmarks.
package gw

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swcc/internal/serve"
)

// Policy names accepted by Config.Policy.
const (
	// PolicyAffinity routes by rendezvous-hashing the canonical cache
	// key: equivalent requests always land on the same healthy backend.
	PolicyAffinity = "affinity"
	// PolicyRoundRobin rotates across healthy backends ignoring the
	// key — the control arm that shows what affinity buys.
	PolicyRoundRobin = "roundrobin"
)

// Config tunes the gateway. Backends is required; every other field
// falls back to the default documented on it.
type Config struct {
	// Backends lists the cohered base URLs ("http://127.0.0.1:8081" or
	// bare "127.0.0.1:8081") the gateway routes across. Required.
	Backends []string
	// Policy selects the routing policy: PolicyAffinity (default) or
	// PolicyRoundRobin.
	Policy string
	// CheckInterval is the per-backend /readyz probe period. Default 1s.
	CheckInterval time.Duration
	// CheckTimeout bounds one /readyz probe. Default 2s.
	CheckTimeout time.Duration
	// FailThreshold is how many consecutive probe failures exclude a
	// backend from routing; one success re-admits it. Default 2.
	FailThreshold int
	// RequestTimeout bounds one proxied request, all retries included.
	// Default 15s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps a request body read at the gateway. Default 1 MiB.
	MaxBodyBytes int64
	// Transport overrides the backend HTTP transport (tests). Default:
	// one shared keep-alive pool sized for the backend fleet.
	Transport http.RoundTripper
	// Logger receives structured lifecycle logs. Default slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = PolicyAffinity
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = time.Second
	}
	if c.CheckTimeout <= 0 {
		c.CheckTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
		}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// backend is one routed-to cohered process and its health/warmth state.
type backend struct {
	url  string // normalized base URL, no trailing slash
	hash uint64 // rendezvous identity

	healthy atomic.Bool
	fails   atomic.Int32 // consecutive probe failures
	warmth  atomic.Pointer[serve.ReadyzCache]

	routes    atomic.Int64    // requests routed here
	responses [3]atomic.Int64 // responses by class: 2xx/3xx, 4xx, 5xx
}

// classIdx buckets a status code into the responses array.
func classIdx(code int) int {
	switch {
	case code >= 500:
		return 2
	case code >= 400:
		return 1
	default:
		return 0
	}
}

// Gateway routes requests across the backend fleet. Construct with New;
// run health checks with Run; serve Handler.
type Gateway struct {
	cfg      Config
	backends []*backend
	client   *http.Client
	log      *slog.Logger
	start    time.Time

	rr           atomic.Uint64 // round-robin cursor
	retries      atomic.Int64  // attempts beyond the first, after a transport failure
	respills     atomic.Int64  // requests routed off their owner because it was excluded
	keyFallbacks atomic.Int64  // bodies keyed by raw bytes because canonical parse failed
	badGateway   atomic.Int64  // 502s: every candidate backend failed
}

// New validates cfg and returns a gateway. Backends start healthy (the
// first probe round corrects that within CheckInterval; Run and CheckNow
// both begin with an immediate round).
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gw: at least one backend required")
	}
	if cfg.Policy != PolicyAffinity && cfg.Policy != PolicyRoundRobin {
		return nil, fmt.Errorf("gw: unknown policy %q (want %s or %s)", cfg.Policy, PolicyAffinity, PolicyRoundRobin)
	}
	g := &Gateway{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		log:    cfg.Logger,
		start:  time.Now(),
	}
	seen := map[string]bool{}
	for _, b := range cfg.Backends {
		u := strings.TrimSuffix(strings.TrimSpace(b), "/")
		if u == "" {
			return nil, errors.New("gw: empty backend address")
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if seen[u] {
			return nil, fmt.Errorf("gw: duplicate backend %s", u)
		}
		seen[u] = true
		bk := &backend{url: u, hash: hashString(fnvOffset, u)}
		bk.healthy.Store(true)
		g.backends = append(g.backends, bk)
	}
	return g, nil
}

// Run drives the per-backend health-check loops until ctx is done,
// starting with an immediate probe round so a dead backend is excluded
// before the first tick. It blocks; callers run it in a goroutine.
func (g *Gateway) Run(ctx context.Context) {
	g.CheckNow(ctx)
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			t := time.NewTicker(g.cfg.CheckInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					g.probe(ctx, b)
				}
			}
		}(b)
	}
	wg.Wait()
}

// CheckNow probes every backend once, synchronously — tests and boot
// paths use it to settle health state without waiting out a tick.
func (g *Gateway) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

// healthySet snapshots the healthy backends. With every backend
// excluded it falls open to the full set: routing somewhere that might
// answer beats synthesizing a guaranteed failure at the gateway.
func (g *Gateway) healthySet() []*backend {
	healthy := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		if b.healthy.Load() {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) == 0 {
		return g.backends
	}
	return healthy
}

// rank orders the candidate backends for one request, best first. Under
// affinity that is rendezvous order — descending splitmix64(key ^
// backend) over the healthy set, so losing a backend re-spills only its
// keys and each lands deterministically on its next-ranked survivor.
// Under round-robin it is a rotation of the healthy set.
func (g *Gateway) rank(key uint64) []*backend {
	healthy := g.healthySet()
	ranked := make([]*backend, len(healthy))
	copy(ranked, healthy)
	if g.cfg.Policy == PolicyRoundRobin {
		off := int(g.rr.Add(1)-1) % len(ranked)
		rot := make([]*backend, 0, len(ranked))
		rot = append(rot, ranked[off:]...)
		rot = append(rot, ranked[:off]...)
		return rot
	}
	sort.Slice(ranked, func(i, j int) bool {
		return splitmix64(key^ranked[i].hash) > splitmix64(key^ranked[j].hash)
	})
	return ranked
}

// owner returns the rendezvous owner of key over ALL backends, healthy
// or not — the reference point for counting re-spills.
func (g *Gateway) owner(key uint64) *backend {
	best := g.backends[0]
	bestScore := splitmix64(key ^ best.hash)
	for _, b := range g.backends[1:] {
		if s := splitmix64(key ^ b.hash); s > bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// Handler returns the gateway's routed handler tree: its own health,
// readiness, and metrics pages plus the proxied /v1 API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("POST /v1/sweep", g.handleSweep)
	mux.HandleFunc("POST /v1/jobs/sweep", g.handleJobs)
	mux.HandleFunc("GET /v1/jobs", g.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}/results", g.handleJobs)
	mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleJobs)
	mux.HandleFunc("POST /v1/", g.handleAPI)
	return mux
}

// backendHeader is set on every proxied response, naming the backend
// that answered — it makes affinity externally observable, which the
// smoke drill leans on.
const backendHeader = "X-Coheregw-Backend"

// handleAPI proxies one single-point API request: read the body,
// derive its routing key, forward along the ranked candidates.
func (g *Gateway) handleAPI(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.writeErr(w, http.StatusBadRequest, fmt.Sprintf("gw: reading body: %v", err))
		return
	}
	g.forward(w, r, body, g.requestKey(r.URL.Path, body), true)
}

// handleJobs proxies the async-job API. Job IDs live in one backend's
// registry, so the whole subtree is pinned to a single deterministic
// backend (the rendezvous owner of a fixed key); submissions are not
// retried on transport failure — a duplicate job is worse than a
// surfaced error the client can retry itself.
func (g *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.writeErr(w, http.StatusBadRequest, fmt.Sprintf("gw: reading body: %v", err))
		return
	}
	retriable := r.Method != http.MethodPost
	g.forward(w, r, body, jobsKey, retriable)
}

// forward tries the ranked candidates in order until one yields an HTTP
// response, streaming that response (status, content headers, body,
// Retry-After) back with the answering backend named in the response
// header. A transport failure excludes the backend on the spot — the
// next request re-spills without waiting for the prober — and, when
// retriable, moves on to the next candidate; the solves behind every
// /v1 endpoint are pure, so replaying one is safe. Only when every
// candidate fails does the client see a gateway-minted 502.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, body []byte, key uint64, retriable bool) {
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	resp, b, err := g.attempt(ctx, g.rank(key), key, r.Method, r.URL.RequestURI(), body, retriable)
	if err != nil {
		g.badGateway.Add(1)
		g.writeErr(w, http.StatusBadGateway, fmt.Sprintf("gw: no backend answered: %v", err))
		return
	}
	g.copyResponse(w, resp, b)
}

// attempt walks the ranked candidates until one yields an HTTP response
// and returns it with the backend that answered. A transport failure
// marks that backend down and, when retriable, moves to the next
// candidate; attempts beyond the first count as retries. The respill
// counter ticks when affinity routing could not use the key's true
// owner.
func (g *Gateway) attempt(ctx context.Context, ranked []*backend, key uint64, method, uri string, body []byte, retriable bool) (*http.Response, *backend, error) {
	if g.cfg.Policy == PolicyAffinity && ranked[0] != g.owner(key) {
		g.respills.Add(1)
	}
	var lastErr error
	for i, b := range ranked {
		if i > 0 {
			if !retriable {
				break
			}
			g.retries.Add(1)
		}
		resp, err := g.send(ctx, b, method, uri, body)
		if err != nil {
			lastErr = err
			g.markDown(b, err)
			if ctx.Err() != nil {
				break
			}
			continue
		}
		b.routes.Add(1)
		b.responses[classIdx(resp.StatusCode)].Add(1)
		return resp, b, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no candidate backends")
	}
	return nil, nil, lastErr
}

// send issues one proxied attempt against one backend.
func (g *Gateway) send(ctx context.Context, b *backend, method, uri string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, b.url+uri, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return g.client.Do(req)
}

// copyResponse relays one backend response to the client.
func (g *Gateway) copyResponse(w http.ResponseWriter, resp *http.Response, b *backend) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(backendHeader, b.url)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		g.log.Debug("copying backend response", "backend", b.url, "err", err)
	}
}

// markDown excludes a backend after a transport-level failure without
// waiting for the prober to notice: requests re-spill immediately, and
// the next successful probe re-admits it.
func (g *Gateway) markDown(b *backend, err error) {
	b.fails.Store(int32(g.cfg.FailThreshold))
	if b.healthy.CompareAndSwap(true, false) {
		g.log.Warn("backend excluded after transport failure", "backend", b.url, "err", err)
	}
}

// writeErr renders a gateway-minted JSON error.
func (g *Gateway) writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
