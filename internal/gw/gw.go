// Package gw is the cache-affinity front tier: an HTTP gateway that
// routes each request to one of N cohered backends by rendezvous-hashing
// the request's canonical cache key, so every backend's sharded memo
// cache stays hot for its own key range instead of all replicas
// re-solving the same (scheme, params) working set. The paper's
// economics apply to the serving tier itself: performance is dominated
// by how often a request lands where its answer is already cached, and
// who services a request determines whether it is a hit.
//
// The gateway health-checks each backend's /readyz, excludes backends
// that fail repeatedly, re-admits them on recovery, and re-spills an
// excluded backend's keys deterministically to the next-ranked backend
// (rendezvous hashing moves only the dead backend's keys — the survivors'
// caches keep their ranges). /v1/sweep batches are partitioned by owner
// backend and reassembled in caller order. A round-robin policy exists
// as the control arm for benchmarks.
//
// Front-tier hardening on top of routing: hedged requests (an
// idempotent request that outlives the observed-latency hedge delay is
// raced against the next-ranked backend, first response wins), weighted
// rendezvous for heterogeneous fleets, live backend-set reload without
// a restart, and a bounded response cache for idempotent hot keys.
package gw

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"swcc/internal/obs"
	"swcc/internal/serve"
)

// Policy names accepted by Config.Policy.
const (
	// PolicyAffinity routes by rendezvous-hashing the canonical cache
	// key: equivalent requests always land on the same healthy backend.
	PolicyAffinity = "affinity"
	// PolicyRoundRobin rotates across healthy backends ignoring the
	// key — the control arm that shows what affinity buys.
	PolicyRoundRobin = "roundrobin"
)

// Config tunes the gateway. Backends is required; every other field
// falls back to the default documented on it.
type Config struct {
	// Backends lists the cohered base URLs ("http://127.0.0.1:8081" or
	// bare "127.0.0.1:8081") the gateway routes across, each with an
	// optional "=WEIGHT" suffix ("http://big:8080=4") giving its
	// rendezvous weight for heterogeneous fleets. Weight defaults to 1;
	// a backend without an explicit weight adopts the one it advertises
	// on /readyz (cohered -weight), if any. Required.
	Backends []string
	// Policy selects the routing policy: PolicyAffinity (default) or
	// PolicyRoundRobin.
	Policy string
	// CheckInterval is the per-backend /readyz probe period. Default 1s.
	CheckInterval time.Duration
	// CheckTimeout bounds one /readyz probe. Default 2s.
	CheckTimeout time.Duration
	// FailThreshold is how many consecutive probe failures exclude a
	// backend from routing; one success re-admits it. Default 2.
	FailThreshold int
	// RequestTimeout bounds one proxied request, all retries included.
	// Job result streams are exempt — they run under a rolling per-write
	// deadline instead, so a long stream is bounded by progress, not by
	// wall clock. Default 15s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps a request body read at the gateway. Default 1 MiB.
	MaxBodyBytes int64
	// Hedge enables hedged requests: when an idempotent request has
	// been in flight longer than the hedge delay, the gateway races a
	// duplicate against the next-ranked backend and streams whichever
	// response arrives first, cancelling the loser. Default off.
	Hedge bool
	// HedgeDelay fixes the hedge delay. Zero (the default) derives it
	// from the gateway's own proxied-latency histogram: twice the
	// observed p90, floored at HedgeMinDelay — past p90 at most ~10% of
	// requests are still in flight, and doubling it keeps the duplicate
	// send rate to the true stragglers.
	HedgeDelay time.Duration
	// HedgeMinDelay floors the derived hedge delay so a microsecond-warm
	// cache cannot make the gateway hedge every request. Default 1ms.
	HedgeMinDelay time.Duration
	// ResponseCacheCap bounds the gateway's response cache for
	// idempotent hot keys (entries, LRU-evicted). Entries are keyed by
	// the canonical cache key plus the answering backend's model
	// fingerprint and dropped wholesale on a backend-set reload.
	// Default 0: no response cache.
	ResponseCacheCap int
	// Transport overrides the backend HTTP transport (tests). Default:
	// one shared keep-alive pool sized for the backend fleet.
	Transport http.RoundTripper
	// Logger receives structured lifecycle logs. Default slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = PolicyAffinity
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = time.Second
	}
	if c.CheckTimeout <= 0 {
		c.CheckTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = time.Millisecond
	}
	if c.Transport == nil {
		c.Transport = &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
			DialContext: (&net.Dialer{
				Timeout:   5 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
		}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// backend is one routed-to cohered process and its health/warmth state.
type backend struct {
	url  string // normalized base URL, no trailing slash
	hash uint64 // rendezvous identity

	// weight holds the float64 bits of the configured rendezvous weight
	// (atomic because a live reload may repin it); 0 = unpinned, adopt
	// the /readyz-advertised weight.
	weight atomic.Uint64

	healthy   atomic.Bool
	fails     atomic.Int32 // consecutive probe failures
	warmth    atomic.Pointer[serve.ReadyzCache]
	advWeight atomic.Uint64            // float64 bits of the /readyz-advertised weight
	modelFP   atomic.Pointer[string]   // model fingerprint from the last /readyz probe
	stop      context.CancelFunc       // cancels this backend's probe loop (guarded by Gateway.mu)

	routes    atomic.Int64    // requests answered from here
	sends     atomic.Int64    // proxied attempts issued here, hedges and retries included
	responses [3]atomic.Int64 // responses by class: 2xx/3xx, 4xx, 5xx
}

// effWeight is the backend's rendezvous weight: the configured one when
// pinned in the backend spec, else the /readyz-advertised one, else 1.
func (b *backend) effWeight() float64 {
	if bits := b.weight.Load(); bits != 0 {
		if w := math.Float64frombits(bits); w > 0 {
			return w
		}
	}
	if bits := b.advWeight.Load(); bits != 0 {
		if w := math.Float64frombits(bits); w > 0 {
			return w
		}
	}
	return 1
}

// score is the backend's weighted rendezvous score for a key: the
// classic -w/ln(u) form with u a (0,1) uniform derived from
// splitmix64(key^hash), so each backend wins a key-space share
// proportional to its weight. At equal weights the ordering reduces
// exactly to descending splitmix64 — the pre-weighting ranking.
func (b *backend) score(key uint64) float64 {
	u := (float64(splitmix64(key^b.hash)>>11) + 0.5) / (1 << 53)
	return -b.effWeight() / math.Log(u)
}

// classIdx buckets a status code into the responses array.
func classIdx(code int) int {
	switch {
	case code >= 500:
		return 2
	case code >= 400:
		return 1
	default:
		return 0
	}
}

// latencyBounds is the proxied-latency histogram's bucket layout
// (seconds): wide enough to straddle sub-millisecond warm hits and
// multi-second cold solves, because the hedge delay derives from it.
var latencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// hedgeMinSamples is how many proxied latencies the histogram must hold
// before a derived hedge delay is trusted; until then hedging stays off
// (a fixed Config.HedgeDelay is live immediately).
const hedgeMinSamples = 64

// Gateway routes requests across the backend fleet. Construct with New;
// run health checks with Run; serve Handler.
type Gateway struct {
	cfg    Config
	client *http.Client
	log    *slog.Logger
	start  time.Time

	// backends is the live routing set, swapped wholesale on Reload so
	// readers always see a consistent snapshot. mu serializes reloads
	// and probe-loop lifecycle; runCtx (set by Run) parents the probe
	// loops of backends added later.
	mu       sync.Mutex
	backends atomic.Pointer[[]*backend]
	runCtx   context.Context
	wg       sync.WaitGroup

	latency *obs.Histogram // proxied request latency, hedge-delay source
	cache   *respCache     // response cache; nil when disabled

	rr           atomic.Uint64 // round-robin cursor
	retries      atomic.Int64  // attempts beyond the first, after a transport failure
	respills     atomic.Int64  // requests routed off their owner because it was excluded
	keyFallbacks atomic.Int64  // bodies keyed by raw bytes because canonical parse failed
	badGateway   atomic.Int64  // 502s: every candidate backend failed
	hedges       atomic.Int64  // hedge attempts launched
	hedgeWins    atomic.Int64  // hedges whose response beat the primary's
	reloads      atomic.Int64  // successful backend-set reloads
}

// New validates cfg and returns a gateway. Backends start healthy (the
// first probe round corrects that within CheckInterval; Run and CheckNow
// both begin with an immediate round).
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gw: at least one backend required")
	}
	if cfg.Policy != PolicyAffinity && cfg.Policy != PolicyRoundRobin {
		return nil, fmt.Errorf("gw: unknown policy %q (want %s or %s)", cfg.Policy, PolicyAffinity, PolicyRoundRobin)
	}
	g := &Gateway{
		cfg:     cfg,
		client:  &http.Client{Transport: cfg.Transport},
		log:     cfg.Logger,
		start:   time.Now(),
		latency: obs.NewHistogram(latencyBounds),
	}
	if cfg.ResponseCacheCap > 0 {
		g.cache = newRespCache(cfg.ResponseCacheCap)
	}
	set, err := parseBackends(cfg.Backends)
	if err != nil {
		return nil, err
	}
	g.backends.Store(&set)
	return g, nil
}

// parseBackends normalizes and validates a backend spec list
// ("URL[=WEIGHT]" each) into fresh backend values, rejecting empties,
// duplicates, and non-positive weights.
func parseBackends(specs []string) ([]*backend, error) {
	seen := map[string]bool{}
	var set []*backend
	for _, spec := range specs {
		u := strings.TrimSpace(spec)
		weight := 0.0
		if i := strings.LastIndex(u, "="); i >= 0 {
			w, err := parseWeight(u[i+1:])
			if err != nil {
				return nil, fmt.Errorf("gw: backend %q: %w", spec, err)
			}
			u, weight = u[:i], w
		}
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, errors.New("gw: empty backend address")
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if seen[u] {
			return nil, fmt.Errorf("gw: duplicate backend %s", u)
		}
		seen[u] = true
		bk := &backend{url: u, hash: hashString(fnvOffset, u)}
		if weight > 0 {
			bk.weight.Store(math.Float64bits(weight))
		}
		bk.healthy.Store(true)
		set = append(set, bk)
	}
	return set, nil
}

// parseWeight parses the "=WEIGHT" suffix of a backend spec.
func parseWeight(s string) (float64, error) {
	var w float64
	if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &w); err != nil {
		return 0, fmt.Errorf("bad weight %q", s)
	}
	if !(w > 0) || math.IsInf(w, 0) {
		return 0, fmt.Errorf("weight must be a positive finite number, got %q", s)
	}
	return w, nil
}

// snapshot returns the current backend set. The slice is immutable —
// Reload swaps in a fresh one — so callers may iterate without locks.
func (g *Gateway) snapshot() []*backend {
	return *g.backends.Load()
}

// Run drives the per-backend health-check loops until ctx is done,
// starting with an immediate probe round so a dead backend is excluded
// before the first tick. Backends added by a later Reload get their
// probe loops here too. It blocks; callers run it in a goroutine.
func (g *Gateway) Run(ctx context.Context) {
	g.mu.Lock()
	g.runCtx = ctx
	for _, b := range g.snapshot() {
		g.startProbeLoop(ctx, b)
	}
	g.mu.Unlock()
	g.CheckNow(ctx)
	<-ctx.Done()
	g.wg.Wait()
}

// startProbeLoop starts one backend's periodic prober under parent,
// recording its cancel on the backend so a Reload that drops the
// backend can stop it. Callers hold g.mu.
func (g *Gateway) startProbeLoop(parent context.Context, b *backend) {
	ctx, cancel := context.WithCancel(parent)
	b.stop = cancel
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer cancel()
		t := time.NewTicker(g.cfg.CheckInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				g.probe(ctx, b)
			}
		}
	}()
}

// CheckNow probes every backend once, synchronously — tests and boot
// paths use it to settle health state without waiting out a tick.
func (g *Gateway) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.snapshot() {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			g.probe(ctx, b)
		}(b)
	}
	wg.Wait()
}

// healthySet snapshots the healthy backends. With every backend
// excluded it falls open to the full set: routing somewhere that might
// answer beats synthesizing a guaranteed failure at the gateway.
func (g *Gateway) healthySet() []*backend {
	all := g.snapshot()
	healthy := make([]*backend, 0, len(all))
	for _, b := range all {
		if b.healthy.Load() {
			healthy = append(healthy, b)
		}
	}
	if len(healthy) == 0 {
		return all
	}
	return healthy
}

// rank orders the candidate backends for one request, best first. Under
// affinity that is weighted rendezvous order — descending -w/ln(u) with
// u drawn from splitmix64(key ^ backend) over the healthy set, so losing
// a backend re-spills only its keys and each lands deterministically on
// its next-ranked survivor. Under round-robin it is a rotation of the
// healthy set.
func (g *Gateway) rank(key uint64) []*backend {
	healthy := g.healthySet()
	ranked := make([]*backend, len(healthy))
	copy(ranked, healthy)
	if g.cfg.Policy == PolicyRoundRobin {
		off := int(g.rr.Add(1)-1) % len(ranked)
		rot := make([]*backend, 0, len(ranked))
		rot = append(rot, ranked[off:]...)
		rot = append(rot, ranked[:off]...)
		return rot
	}
	sort.Slice(ranked, func(i, j int) bool {
		return ranked[i].score(key) > ranked[j].score(key)
	})
	return ranked
}

// owner returns the rendezvous owner of key over ALL backends, healthy
// or not — the reference point for counting re-spills.
func (g *Gateway) owner(key uint64) *backend {
	all := g.snapshot()
	best := all[0]
	bestScore := best.score(key)
	for _, b := range all[1:] {
		if s := b.score(key); s > bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// Handler returns the gateway's routed handler tree: its own health,
// readiness, and metrics pages plus the proxied /v1 API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("POST /v1/sweep", g.handleSweep)
	mux.HandleFunc("POST /v1/jobs/sweep", g.handleJobs)
	mux.HandleFunc("GET /v1/jobs", g.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}/results", g.handleJobResults)
	mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleJobs)
	mux.HandleFunc("POST /v1/", g.handleAPI)
	return mux
}

// backendHeader is set on every proxied response, naming the backend
// that answered — it makes affinity externally observable, which the
// smoke drill leans on.
const backendHeader = "X-Coheregw-Backend"

// cacheHeader marks a response served from the gateway's response cache.
const cacheHeader = "X-Coheregw-Cache"

// traceHeader carries the request ID end to end: the gateway adopts a
// valid inbound one (or mints its own), forwards it to the backend, and
// echoes the backend's copy to the client — the same accept-or-generate
// contract cohered applies, so one ID correlates gateway access logs
// with backend cache events.
const traceHeader = "X-Request-ID"

// proxyOpts shapes how one request is forwarded.
type proxyOpts struct {
	// retriable: a transport failure may replay the request on the
	// next-ranked candidate (every /v1 solve is pure; job POSTs are not
	// retriable because a duplicate job is worse than a clean error).
	retriable bool
	// streaming: the response is a long-lived NDJSON stream — exempt
	// from RequestTimeout, relayed under a rolling per-write deadline,
	// and flushed per chunk so batches arrive as the backend emits them.
	streaming bool
	// cacheKey/cacheable: the response may be served from / stored into
	// the gateway response cache under this canonical key.
	cacheKey  uint64
	cacheable bool
}

// handleAPI proxies one single-point API request: read the body,
// derive its routing key, forward along the ranked candidates.
func (g *Gateway) handleAPI(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.writeErr(w, http.StatusBadRequest, fmt.Sprintf("gw: reading body: %v", err))
		return
	}
	opts := proxyOpts{retriable: true}
	if g.cache != nil {
		opts.cacheKey, opts.cacheable = responseKey(r.URL.Path, body)
	}
	g.forward(w, r, body, g.requestKey(r.URL.Path, body), opts)
}

// handleJobs proxies the async-job API. Job IDs live in one backend's
// registry, so the whole subtree is pinned to a single deterministic
// backend (the rendezvous owner of a fixed key); submissions are not
// retried on transport failure — a duplicate job is worse than a
// surfaced error the client can retry itself.
func (g *Gateway) handleJobs(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		g.writeErr(w, http.StatusBadRequest, fmt.Sprintf("gw: reading body: %v", err))
		return
	}
	g.forward(w, r, body, jobsKey, proxyOpts{retriable: r.Method != http.MethodPost})
}

// handleJobResults proxies a job's NDJSON result stream. Unlike every
// other endpoint the stream is exempt from RequestTimeout: a 100k-point
// job legitimately streams for longer than any sane per-request budget,
// and the backend already bounds it with its own rolling per-write
// deadline — the gateway mirrors that and otherwise just relays.
func (g *Gateway) handleJobResults(w http.ResponseWriter, r *http.Request) {
	g.forward(w, r, nil, jobsKey, proxyOpts{retriable: true, streaming: true})
}

// forward tries the ranked candidates until one yields an HTTP
// response, streaming that response (status, content headers, body,
// Retry-After) back with the answering backend named in the response
// header. A backend transport failure excludes the backend on the spot —
// the next request re-spills without waiting for the prober — and, when
// retriable, moves on to the next candidate; the solves behind every
// /v1 endpoint are pure, so replaying one is safe. The caller's own
// cancellation (client gone, gateway budget) is never blamed on the
// backend. Only when every candidate fails does the client see a
// gateway-minted 502.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, body []byte, key uint64, opts proxyOpts) {
	start := time.Now()
	trace := r.Header.Get(traceHeader)
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	if opts.cacheable && g.serveFromCache(w, r, opts.cacheKey, key, trace, start) {
		return
	}
	ctx := r.Context()
	if !opts.streaming {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.RequestTimeout)
		defer cancel()
	}
	resp, b, release, err := g.attempt(ctx, g.rank(key), key, r.Method, r.URL.RequestURI(), body, trace, opts)
	if err != nil {
		code := http.StatusBadGateway
		msg := "gw: no backend answered: " + err.Error()
		switch {
		case callerCancelled(ctx, err) && r.Context().Err() == nil:
			// The gateway's own budget fired while a healthy backend was
			// still working: that is a timeout, not a bad fleet.
			code, msg = http.StatusGatewayTimeout, "gw: request timed out: "+err.Error()
		case callerCancelled(ctx, err):
			// The client hung up: nobody is listening and nothing failed.
		default:
			g.badGateway.Add(1)
		}
		w.Header().Set(traceHeader, trace)
		g.writeErr(w, code, msg)
		g.logRequest(r, code, "", trace, start)
		return
	}
	defer release()
	g.copyResponse(w, resp, b, trace, opts)
	g.logRequest(r, resp.StatusCode, b.url, trace, start)
}

// logRequest emits one gateway access-log line, tagged with the request
// ID so the line joins up with the backend's own access log and cache
// events for the same request.
func (g *Gateway) logRequest(r *http.Request, status int, backend, trace string, start time.Time) {
	g.log.Info("gw request",
		"method", r.Method, "path", r.URL.Path, "status", status,
		"backend", backend, "trace", trace,
		"duration_ms", float64(time.Since(start).Microseconds())/1000)
}

// callerCancelled reports whether err is the requester's own doing —
// the client hung up or the deadline governing ctx fired — rather than
// anything the backend did. Such errors must never exclude a backend:
// a slow-but-healthy backend serving an impatient client is still
// healthy, and excluding it would shed its whole key range for nothing.
func callerCancelled(ctx context.Context, err error) bool {
	return ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// attempt walks the ranked candidates until one yields an HTTP response
// and returns it with the backend that answered and a release func the
// caller must run once the response body is consumed. A backend
// transport failure marks that backend down and, when retriable, moves
// to the next candidate; caller-context cancellation stops the walk
// without blaming anyone. When hedging is enabled and a delay is
// available, the first candidate races the second for idempotent
// non-streaming requests. The respill counter ticks when affinity
// routing could not use the key's true owner.
func (g *Gateway) attempt(ctx context.Context, ranked []*backend, key uint64, method, uri string, body []byte, trace string, opts proxyOpts) (*http.Response, *backend, func(), error) {
	if g.cfg.Policy == PolicyAffinity && len(ranked) > 0 && ranked[0] != g.owner(key) {
		g.respills.Add(1)
	}
	if delay, ok := g.hedgeDelay(); ok && opts.retriable && !opts.streaming && len(ranked) >= 2 {
		return g.attemptHedged(ctx, ranked, delay, method, uri, body, trace, opts)
	}
	resp, b, err := g.attemptSeq(ctx, ranked, method, uri, body, trace, opts, false)
	return resp, b, nopRelease, err
}

// nopRelease is the release func for un-hedged responses: nothing to
// cancel once the body is consumed.
func nopRelease() {}

// attemptSeq is the sequential candidate walk; countFirst counts even
// the first attempt as a retry (the hedged path uses it for its
// overflow candidates).
func (g *Gateway) attemptSeq(ctx context.Context, ranked []*backend, method, uri string, body []byte, trace string, opts proxyOpts, countFirst bool) (*http.Response, *backend, error) {
	var lastErr error
	for i, b := range ranked {
		if i > 0 || countFirst {
			if !opts.retriable {
				break
			}
			g.retries.Add(1)
		}
		resp, err := g.send(ctx, b, method, uri, body, trace)
		if err != nil {
			lastErr = err
			if callerCancelled(ctx, err) {
				break
			}
			g.markDown(b, err)
			continue
		}
		b.routes.Add(1)
		b.responses[classIdx(resp.StatusCode)].Add(1)
		return resp, b, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no candidate backends")
	}
	return nil, nil, lastErr
}

// attemptHedged races the top-ranked candidate against the next one:
// the primary is sent immediately, and if it has not answered within
// delay the hedge fires. First response wins and is relayed; the loser
// is cancelled (its cancellation never marks it down — the gateway did
// it, not the network). A candidate that fails with a real transport
// error is marked down as usual, and if both hedge lanes fail the walk
// falls back to the remaining candidates sequentially.
func (g *Gateway) attemptHedged(ctx context.Context, ranked []*backend, delay time.Duration, method, uri string, body []byte, trace string, opts proxyOpts) (*http.Response, *backend, func(), error) {
	type lane struct {
		b      *backend
		cancel context.CancelFunc
		ch     chan laneResult
	}
	launch := func(b *backend) *lane {
		lctx, cancel := context.WithCancel(ctx)
		l := &lane{b: b, cancel: cancel, ch: make(chan laneResult, 1)}
		go func() {
			resp, err := g.send(lctx, b, method, uri, body, trace)
			l.ch <- laneResult{resp: resp, err: err, ctx: lctx}
		}()
		return l
	}
	primary := launch(ranked[0])
	var hedge *lane
	timer := time.NewTimer(delay)
	defer timer.Stop()

	finish := func(winner, loser *lane, r laneResult) (*http.Response, *backend, func(), error) {
		winner.b.routes.Add(1)
		winner.b.responses[classIdx(r.resp.StatusCode)].Add(1)
		if loser != nil {
			loser.cancel()
			go func(l *lane) {
				// Reap the loser off the request path: close its body if
				// it answered after all, and never blame it for the
				// cancellation we just issued.
				lr := <-l.ch
				if lr.resp != nil {
					lr.resp.Body.Close()
				} else if lr.err != nil && !callerCancelled(lr.ctx, lr.err) {
					g.markDown(l.b, lr.err)
				}
			}(loser)
		}
		return r.resp, winner.b, winner.cancel, nil
	}

	var failed []error
	for {
		var hedgeCh chan laneResult
		if hedge != nil {
			hedgeCh = hedge.ch
		}
		var primaryCh chan laneResult
		if primary != nil {
			primaryCh = primary.ch
		}
		select {
		case <-timer.C:
			if hedge == nil && primary != nil {
				g.hedges.Add(1)
				hedge = launch(ranked[1])
			}
		case r := <-primaryCh:
			if r.err == nil {
				return finish(primary, hedge, r)
			}
			primary.cancel()
			if callerCancelled(ctx, r.err) {
				if hedge != nil {
					hedge.cancel()
				}
				return nil, nil, nopRelease, r.err
			}
			g.markDown(primary.b, r.err)
			failed = append(failed, r.err)
			primary = nil
			if hedge == nil {
				// The primary died before the hedge delay: move straight to
				// the next candidate as an ordinary retry, not a hedge.
				g.retries.Add(1)
				hedge = launch(ranked[1])
			}
		case r := <-hedgeCh:
			if r.err == nil {
				if primary != nil {
					g.hedgeWins.Add(1)
				}
				return finish(hedge, primary, r)
			}
			hedge.cancel()
			if callerCancelled(ctx, r.err) {
				if primary != nil {
					primary.cancel()
				}
				return nil, nil, nopRelease, r.err
			}
			g.markDown(hedge.b, r.err)
			failed = append(failed, r.err)
			hedge = nil
		}
		if primary == nil && hedge == nil {
			// Both lanes failed for real: continue down the ranking.
			resp, b, err := g.attemptSeq(ctx, ranked[2:], method, uri, body, trace, opts, true)
			if err != nil && len(failed) > 0 {
				err = fmt.Errorf("%v (after %d hedge-lane failures, last: %v)", err, len(failed), failed[len(failed)-1])
			}
			return resp, b, nopRelease, err
		}
	}
}

// laneResult carries one hedge lane's outcome.
type laneResult struct {
	resp *http.Response
	err  error
	ctx  context.Context
}

// hedgeDelay returns the current hedge delay and whether hedging is
// active: a fixed Config.HedgeDelay is always live, a derived one needs
// hedgeMinSamples observed latencies first.
func (g *Gateway) hedgeDelay() (time.Duration, bool) {
	if !g.cfg.Hedge {
		return 0, false
	}
	if g.cfg.HedgeDelay > 0 {
		return g.cfg.HedgeDelay, true
	}
	snap := g.latency.Snapshot()
	if snap.Count < hedgeMinSamples {
		return 0, false
	}
	d := time.Duration(2 * snap.Quantile(0.9) * float64(time.Second))
	if d < g.cfg.HedgeMinDelay {
		d = g.cfg.HedgeMinDelay
	}
	return d, true
}

// send issues one proxied attempt against one backend, forwarding the
// request ID and observing the attempt's latency on success.
func (g *Gateway) send(ctx context.Context, b *backend, method, uri string, body []byte, trace string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, b.url+uri, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(traceHeader, trace)
	}
	b.sends.Add(1)
	start := time.Now()
	resp, err := g.client.Do(req)
	if err == nil {
		g.latency.Observe(time.Since(start).Seconds())
	}
	return resp, err
}

// streamWriteWindow is how long a relayed stream may go without the
// client accepting a write before the gateway gives up on it — the
// rolling per-write deadline that replaces RequestTimeout for job
// result streams (mirrors the backend's own window).
const streamWriteWindow = 30 * time.Second

// copyResponse relays one backend response to the client, echoing the
// request ID. Streams are copied chunk by chunk with a flush and a
// refreshed write deadline per chunk, so each NDJSON batch reaches the
// client as the backend emits it instead of pooling in the gateway's
// buffer; everything else is a single bounded copy. Cacheable 200s are
// stored in the response cache on the way through.
func (g *Gateway) copyResponse(w http.ResponseWriter, resp *http.Response, b *backend, trace string, opts proxyOpts) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if echo := resp.Header.Get(traceHeader); obs.ValidTraceID(echo) {
		trace = echo
	}
	w.Header().Set(traceHeader, trace)
	w.Header().Set(backendHeader, b.url)
	if opts.streaming {
		w.WriteHeader(resp.StatusCode)
		rc := http.NewResponseController(w)
		buf := make([]byte, 32<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				rc.SetWriteDeadline(time.Now().Add(streamWriteWindow)) //nolint:errcheck
				if _, werr := w.Write(buf[:n]); werr != nil {
					g.log.Debug("stream client gone", "backend", b.url, "err", werr)
					return
				}
				rc.Flush() //nolint:errcheck
			}
			if rerr != nil {
				if rerr != io.EOF {
					g.log.Debug("copying backend stream", "backend", b.url, "err", rerr)
				}
				return
			}
		}
	}
	if opts.cacheable && g.cache != nil && resp.StatusCode == http.StatusOK {
		if fp := b.modelFP.Load(); fp != nil && *fp != "" {
			data, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes*64))
			if err != nil {
				g.log.Debug("reading cacheable response", "backend", b.url, "err", err)
				w.WriteHeader(http.StatusBadGateway)
				return
			}
			g.cache.store(opts.cacheKey, *fp, resp.Header.Get("Content-Type"), b.url, data)
			w.WriteHeader(resp.StatusCode)
			w.Write(data) //nolint:errcheck
			return
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		g.log.Debug("copying backend response", "backend", b.url, "err", err)
	}
}

// serveFromCache answers a cacheable request from the response cache,
// reporting whether it did. The lookup is keyed by the canonical cache
// key plus the model fingerprint of the backend the routing key would
// send the request to — a cached response from a different model build
// can never hit.
func (g *Gateway) serveFromCache(w http.ResponseWriter, r *http.Request, key, routeKey uint64, trace string, start time.Time) bool {
	ranked := g.rank(routeKey)
	if len(ranked) == 0 {
		return false
	}
	fp := ranked[0].modelFP.Load()
	if fp == nil || *fp == "" {
		return false
	}
	e, ok := g.cache.lookup(key, *fp)
	if !ok {
		return false
	}
	w.Header().Set("Content-Type", e.contentType)
	w.Header().Set(traceHeader, trace)
	w.Header().Set(backendHeader, e.backend)
	w.Header().Set(cacheHeader, "hit")
	w.WriteHeader(http.StatusOK)
	w.Write(e.body) //nolint:errcheck
	g.logRequest(r, http.StatusOK, e.backend+" (cache)", trace, start)
	return true
}

// markDown excludes a backend after a transport-level failure without
// waiting for the prober to notice: requests re-spill immediately, and
// the next successful probe re-admits it. Callers classify first —
// caller-context cancellation never lands here.
func (g *Gateway) markDown(b *backend, err error) {
	b.fails.Store(int32(g.cfg.FailThreshold))
	if b.healthy.CompareAndSwap(true, false) {
		g.log.Warn("backend excluded after transport failure", "backend", b.url, "err", err)
	}
}

// writeErr renders a gateway-minted JSON error.
func (g *Gateway) writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}
