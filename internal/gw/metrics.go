package gw

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// The gateway's /metrics page, Prometheus text format, byte-stable
// ordering: backends render in configuration order, families in fixed
// order, and every family always renders its HELP/TYPE header even at
// zero — scrapes and drift tests see the full surface from the first
// request.

// classLabels names the responses array's status-class buckets.
var classLabels = [3]string{"2xx", "4xx", "5xx"}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.writeMetrics(w)
}

// writeMetrics renders every gateway metrics family to w.
func (g *Gateway) writeMetrics(w io.Writer) {
	backends := g.snapshot()

	fmt.Fprintln(w, "# HELP swcc_gw_backend_healthy Whether the backend is currently routed to (1) or excluded (0).")
	fmt.Fprintln(w, "# TYPE swcc_gw_backend_healthy gauge")
	healthy := 0
	for _, b := range backends {
		v := 0
		if b.healthy.Load() {
			v = 1
			healthy++
		}
		fmt.Fprintf(w, "swcc_gw_backend_healthy{backend=%q} %d\n", b.url, v)
	}

	fmt.Fprintln(w, "# HELP swcc_gw_healthy_backends Backends currently in the routing set.")
	fmt.Fprintln(w, "# TYPE swcc_gw_healthy_backends gauge")
	fmt.Fprintf(w, "swcc_gw_healthy_backends %d\n", healthy)

	fmt.Fprintln(w, "# HELP swcc_gw_backend_weight Effective rendezvous weight per backend (configured, else advertised, else 1).")
	fmt.Fprintln(w, "# TYPE swcc_gw_backend_weight gauge")
	for _, b := range backends {
		fmt.Fprintf(w, "swcc_gw_backend_weight{backend=%q} %s\n", b.url, strconv.FormatFloat(b.effWeight(), 'g', -1, 64))
	}

	fmt.Fprintln(w, "# HELP swcc_gw_routes_total Requests answered by each backend.")
	fmt.Fprintln(w, "# TYPE swcc_gw_routes_total counter")
	for _, b := range backends {
		fmt.Fprintf(w, "swcc_gw_routes_total{backend=%q} %d\n", b.url, b.routes.Load())
	}

	fmt.Fprintln(w, "# HELP swcc_gw_backend_sends_total Proxied attempts issued to each backend, retries and hedges included.")
	fmt.Fprintln(w, "# TYPE swcc_gw_backend_sends_total counter")
	for _, b := range backends {
		fmt.Fprintf(w, "swcc_gw_backend_sends_total{backend=%q} %d\n", b.url, b.sends.Load())
	}

	fmt.Fprintln(w, "# HELP swcc_gw_backend_responses_total Backend responses by status class.")
	fmt.Fprintln(w, "# TYPE swcc_gw_backend_responses_total counter")
	for _, b := range backends {
		for i, class := range classLabels {
			fmt.Fprintf(w, "swcc_gw_backend_responses_total{backend=%q,class=%q} %d\n",
				b.url, class, b.responses[i].Load())
		}
	}

	fmt.Fprintln(w, "# HELP swcc_gw_retries_total Proxied attempts beyond the first, after a backend transport failure.")
	fmt.Fprintln(w, "# TYPE swcc_gw_retries_total counter")
	fmt.Fprintf(w, "swcc_gw_retries_total %d\n", g.retries.Load())

	fmt.Fprintln(w, "# HELP swcc_gw_hedges_total Hedge attempts launched: the primary outlived the hedge delay and a duplicate raced the next-ranked backend.")
	fmt.Fprintln(w, "# TYPE swcc_gw_hedges_total counter")
	fmt.Fprintf(w, "swcc_gw_hedges_total %d\n", g.hedges.Load())

	fmt.Fprintln(w, "# HELP swcc_gw_hedge_wins_total Hedged requests where the hedge's response beat the primary's.")
	fmt.Fprintln(w, "# TYPE swcc_gw_hedge_wins_total counter")
	fmt.Fprintf(w, "swcc_gw_hedge_wins_total %d\n", g.hedgeWins.Load())

	fmt.Fprintln(w, "# HELP swcc_gw_respills_total Requests routed off their rendezvous owner because it was excluded.")
	fmt.Fprintln(w, "# TYPE swcc_gw_respills_total counter")
	fmt.Fprintf(w, "swcc_gw_respills_total %d\n", g.respills.Load())

	fmt.Fprintln(w, "# HELP swcc_gw_key_fallbacks_total Requests keyed by raw body bytes because canonical parsing failed.")
	fmt.Fprintln(w, "# TYPE swcc_gw_key_fallbacks_total counter")
	fmt.Fprintf(w, "swcc_gw_key_fallbacks_total %d\n", g.keyFallbacks.Load())

	fmt.Fprintln(w, "# HELP swcc_gw_bad_gateway_total Gateway-minted 502s: every candidate backend failed.")
	fmt.Fprintln(w, "# TYPE swcc_gw_bad_gateway_total counter")
	fmt.Fprintf(w, "swcc_gw_bad_gateway_total %d\n", g.badGateway.Load())

	fmt.Fprintln(w, "# HELP swcc_gw_reloads_total Backend-set reloads applied without a restart.")
	fmt.Fprintln(w, "# TYPE swcc_gw_reloads_total counter")
	fmt.Fprintf(w, "swcc_gw_reloads_total %d\n", g.reloads.Load())

	var entries int
	var hits, misses, invalidations int64
	if g.cache != nil {
		entries, hits, misses, invalidations = g.cache.stats()
	}
	fmt.Fprintln(w, "# HELP swcc_gw_response_cache_entries Responses currently held in the gateway response cache.")
	fmt.Fprintln(w, "# TYPE swcc_gw_response_cache_entries gauge")
	fmt.Fprintf(w, "swcc_gw_response_cache_entries %d\n", entries)

	fmt.Fprintln(w, "# HELP swcc_gw_response_cache_hits_total Cacheable requests answered from the gateway response cache.")
	fmt.Fprintln(w, "# TYPE swcc_gw_response_cache_hits_total counter")
	fmt.Fprintf(w, "swcc_gw_response_cache_hits_total %d\n", hits)

	fmt.Fprintln(w, "# HELP swcc_gw_response_cache_misses_total Cacheable requests the response cache could not answer.")
	fmt.Fprintln(w, "# TYPE swcc_gw_response_cache_misses_total counter")
	fmt.Fprintf(w, "swcc_gw_response_cache_misses_total %d\n", misses)

	fmt.Fprintln(w, "# HELP swcc_gw_response_cache_invalidations_total Wholesale response-cache drops after a backend-set change.")
	fmt.Fprintln(w, "# TYPE swcc_gw_response_cache_invalidations_total counter")
	fmt.Fprintf(w, "swcc_gw_response_cache_invalidations_total %d\n", invalidations)

	fmt.Fprintln(w, "# HELP swcc_gw_backend_cache_entries Memo-cache entries per backend, from its last /readyz probe.")
	fmt.Fprintln(w, "# TYPE swcc_gw_backend_cache_entries gauge")
	for _, b := range backends {
		var demand, curve int
		if c := b.warmth.Load(); c != nil {
			demand, curve = c.DemandEntries, c.CurveEntries
		}
		fmt.Fprintf(w, "swcc_gw_backend_cache_entries{backend=%q,cache=\"demand\"} %d\n", b.url, demand)
		fmt.Fprintf(w, "swcc_gw_backend_cache_entries{backend=%q,cache=\"curve\"} %d\n", b.url, curve)
	}

	fmt.Fprintln(w, "# HELP swcc_gw_backend_hit_ratio Lifetime cache hit ratio per backend, from its last /readyz probe.")
	fmt.Fprintln(w, "# TYPE swcc_gw_backend_hit_ratio gauge")
	for _, b := range backends {
		ratio := 0.0
		if c := b.warmth.Load(); c != nil {
			ratio = c.HitRatio
		}
		fmt.Fprintf(w, "swcc_gw_backend_hit_ratio{backend=%q} %s\n", b.url, strconv.FormatFloat(ratio, 'g', -1, 64))
	}
}
