package gw

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"swcc/internal/core"
)

// Routing keys are the gateway's half of the cache-affinity contract:
// two requests the backend answers from the same memo entries must hash
// to the same key, so they land on the same backend and the second one
// is a hit. The gateway reuses the model's own canonicalization —
// core.CanonicalParams collapses every parameter the scheme ignores —
// and deliberately leaves procs out of bus keys: the evaluator's curves
// are prefix-shared, so all populations of one (scheme, workload) curve
// belong on one backend.

// FNV-1a constants, matching the evaluator's shard hashing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// jobsKey pins the whole /v1/jobs subtree to one rendezvous owner: job
// IDs exist in a single backend's registry, so splitting the subtree
// would make a submitted job unfindable.
const jobsKey uint64 = fnvOffset ^ 0x6a6f6273 // "jobs"

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func hashFloat(h uint64, f float64) uint64 {
	b := math.Float64bits(f)
	for i := 0; i < 64; i += 8 {
		h = (h ^ (b >> i & 0xff)) * fnvPrime
	}
	return h
}

// splitmix64 is the rendezvous score mixer: cheap, stateless, and
// avalanching, so one flipped key bit reshuffles the backend ranking.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keyRequest is the tolerant decode of any keyed /v1 body: the routing
// fields shared by /v1/bus and /v1/network, unknown fields ignored —
// strict validation is the backend's job, the gateway only needs a
// stable equivalence class.
type keyRequest struct {
	Scheme     string          `json:"scheme"`
	LockFrac   *float64        `json:"lockfrac"`
	UpdateFrac *float64        `json:"updatefrac"`
	Level      string          `json:"level"`
	Params     json.RawMessage `json:"params"`
}

// requestKey derives the routing key for one request body. Bus and
// network requests key on (scheme identity, canonical params); bodies
// that do not parse — and endpoints with no single scheme (advisor,
// sensitivity) — fall back to hashing the raw bytes, which affects only
// affinity quality (identical bodies still co-locate), never
// correctness.
func (g *Gateway) requestKey(path string, body []byte) uint64 {
	switch path {
	case "/v1/bus", "/v1/network":
		if key, ok := pointKey(body); ok {
			return key
		}
		g.keyFallbacks.Add(1)
	}
	return rawKey(body)
}

// pointKey keys one bus-shaped body on its canonical cache identity.
func pointKey(body []byte) (uint64, bool) {
	var req keyRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return 0, false
	}
	scheme, err := keyScheme(req.Scheme, req.LockFrac, req.UpdateFrac)
	if err != nil {
		return 0, false
	}
	p, err := keyParams(req.Level, req.Params)
	if err != nil {
		return 0, false
	}
	cp := core.CanonicalParams(scheme, p)
	h := hashString(fnvOffset, schemeLabel(scheme))
	for _, f := range [...]float64{
		cp.LS, cp.MsDat, cp.MsIns, cp.MD, cp.Shd, cp.WR,
		cp.APL, cp.MdShd, cp.OClean, cp.OPres, cp.NShd,
	} {
		h = hashFloat(h, f)
	}
	return h, true
}

// keyScheme resolves a scheme name the way the backend will, knob
// values (hybrid lock fraction, hybrid-update update fraction)
// included: the registry supplies each scheme's knob name, default,
// and constructor, so new knobbed schemes key correctly with no
// gateway change.
func keyScheme(name string, lockFrac, updateFrac *float64) (core.Scheme, error) {
	info, ok := core.SchemeInfoByName(name)
	if !ok {
		return core.SchemeByName(name) // surfaces the names-listing error
	}
	if info.Configure == nil {
		return info.Scheme, nil
	}
	v := info.KnobDefault
	switch info.Knob {
	case "lockfrac":
		if lockFrac != nil {
			v = *lockFrac
		}
	case "updatefrac":
		if updateFrac != nil {
			v = *updateFrac
		}
	}
	return info.Configure(v)
}

// keyParams resolves the workload spec the way the backend will: a
// Table 7 level, explicit params, or the middle defaults.
func keyParams(level string, params json.RawMessage) (core.Params, error) {
	switch level {
	case "low":
		return core.ParamsAt(core.Low), nil
	case "mid":
		return core.ParamsAt(core.Mid), nil
	case "high":
		return core.ParamsAt(core.High), nil
	case "":
	default:
		return core.Params{}, fmt.Errorf("gw: unknown level %q", level)
	}
	if len(params) == 0 {
		return core.MiddleParams(), nil
	}
	return core.ReadParams(bytes.NewReader(params))
}

// schemeLabel mirrors the backend's cache identity for a scheme: String
// when it carries configuration, Name otherwise.
func schemeLabel(s core.Scheme) string {
	if str, ok := s.(fmt.Stringer); ok {
		return str.String()
	}
	return s.Name()
}

// responseKey derives the response-cache key for one request, and
// whether the request is cacheable at all. Only the pure single-point
// endpoints qualify, and only when the body parses canonically — a
// raw-keyed body could alias nothing, but a canonical key proves two
// requests are the same question. Unlike the routing key, the response
// key must separate everything that changes the response BYTES, so it
// folds in the path, the processor count (bus routing keys deliberately
// share one key across populations of a curve), and the point/full
// response shape.
func responseKey(path string, body []byte) (uint64, bool) {
	switch path {
	case "/v1/bus", "/v1/network":
	default:
		return 0, false
	}
	key, ok := pointKey(body)
	if !ok {
		return 0, false
	}
	var shape struct {
		Procs int  `json:"procs"`
		Point bool `json:"point"`
	}
	if err := json.Unmarshal(body, &shape); err != nil {
		return 0, false
	}
	h := hashString(key, path)
	h = hashFloat(h, float64(shape.Procs))
	if shape.Point {
		h = hashString(h, "point")
	}
	return h, true
}

// rawKey is the fallback routing key: FNV-1a over the body bytes.
func rawKey(body []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range body {
		h = (h ^ uint64(b)) * fnvPrime
	}
	return h
}
