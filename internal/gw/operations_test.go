package gw

import (
	"bytes"
	"io"
	"log/slog"
	"os"
	"regexp"
	"sort"
	"testing"
)

// TestOperationsDocCoversGatewayMetrics is the gateway's half of the
// /metrics drift contract (internal/serve owns the daemon's half):
// every swcc_gw_* family the gateway emits must be documented
// (backtick-quoted) in OPERATIONS.md, and every swcc_gw_* name the doc
// mentions must still be emitted.
func TestOperationsDocCoversGatewayMetrics(t *testing.T) {
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("reading OPERATIONS.md: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range regexp.MustCompile("`(swcc_gw_[a-z_]+)`").FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no swcc_gw_* series found in OPERATIONS.md — parser or doc broken")
	}

	g, err := New(Config{
		Backends: []string{"http://127.0.0.1:1"},
		Logger:   slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	g.writeMetrics(&buf)
	emitted := map[string]bool{}
	for _, m := range regexp.MustCompile(`(?m)^# TYPE (swcc_gw_[a-z_]+) `).FindAllStringSubmatch(buf.String(), -1) {
		emitted[m[1]] = true
	}
	if len(emitted) == 0 {
		t.Fatal("no # TYPE lines in gateway scrape — exposition format broken")
	}

	var missing, stale []string
	for name := range emitted {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !emitted[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("emitted but not documented in OPERATIONS.md: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("documented in OPERATIONS.md but no longer emitted: %v", stale)
	}
}
