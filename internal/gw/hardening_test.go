package gw

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swcc/internal/obs"
	"swcc/internal/serve"
)

// Regression and feature tests for the front-tier hardening pass: the
// three failure-semantics bugs (caller-cancellation blamed on backends,
// job streams severed by the blanket request timeout, request IDs
// dropped at the tier boundary) and the rungs built on the fixes
// (hedged requests, weighted rendezvous, live reload, response cache).

// readyzOK is the minimal /readyz body a fake backend serves so the
// gateway's probes keep it admitted.
func readyzOK(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"ready": true, "cache": {"demand_entries": 0, "curve_entries": 0, "hit_ratio": 0}}`)
}

// newFakeBackend boots an httptest backend with a healthy /readyz plus
// the given extra routes.
func newFakeBackend(t *testing.T, routes map[string]http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", readyzOK)
	for pat, h := range routes {
		mux.HandleFunc(pat, h)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestImpatientClientLeavesBackendHealthy is the regression test for
// bug 1: a client that hangs up on a slow-but-healthy backend must not
// get that backend excluded — before the fix, every send error marked
// the backend down and shed its whole key range.
func TestImpatientClientLeavesBackendHealthy(t *testing.T) {
	slow := newFakeBackend(t, map[string]http.HandlerFunc{
		"POST /v1/bus": func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body) //nolint:errcheck
			select {
			case <-time.After(2 * time.Second):
			case <-r.Context().Done():
				return
			}
			fmt.Fprintln(w, `{}`)
		},
	})
	g, ts := newGateway(t, PolicyAffinity, slow.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/bus",
		strings.NewReader(`{"scheme": "dragon", "procs": 8}`))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("impatient client unexpectedly got a response")
	}
	time.Sleep(50 * time.Millisecond) // let the gateway's forward path finish

	b := g.snapshot()[0]
	if !b.healthy.Load() {
		t.Fatal("client disconnect excluded a healthy backend")
	}
	if got := g.badGateway.Load(); got != 0 {
		t.Fatalf("client disconnect counted as a gateway failure: badGateway=%d", got)
	}
}

// TestGatewayTimeoutLeavesBackendHealthy is the second half of bug 1:
// the gateway's own RequestTimeout firing mid-solve is the gateway's
// deadline, not a backend transport failure — the client gets a 504
// (not a 502) and the backend stays in the routing set.
func TestGatewayTimeoutLeavesBackendHealthy(t *testing.T) {
	slow := newFakeBackend(t, map[string]http.HandlerFunc{
		"POST /v1/bus": func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body) //nolint:errcheck
			select {
			case <-time.After(2 * time.Second):
			case <-r.Context().Done():
				return
			}
			fmt.Fprintln(w, `{}`)
		},
	})
	g, err := New(Config{
		Backends:       []string{slow.URL},
		RequestTimeout: 80 * time.Millisecond,
		Logger:         slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.CheckNow(context.Background())
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	code, body, _ := postGW(t, ts, "/v1/bus", `{"scheme": "dragon", "procs": 8}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("gateway budget firing answered %d, want 504: %s", code, body)
	}
	if !g.snapshot()[0].healthy.Load() {
		t.Fatal("gateway's own RequestTimeout excluded a healthy backend")
	}
	if got := g.badGateway.Load(); got != 0 {
		t.Fatalf("gateway timeout counted as a fleet failure: badGateway=%d", got)
	}
}

// TestJobStreamOutlivesRequestTimeout is the regression test for bug 2:
// a job result stream longer than RequestTimeout must keep flowing
// through the gateway, with rows arriving incrementally rather than
// pooled until the stream ends.
func TestJobStreamOutlivesRequestTimeout(t *testing.T) {
	const rows, interval = 6, 80 * time.Millisecond
	backend := newFakeBackend(t, map[string]http.HandlerFunc{
		"GET /v1/jobs/{id}/results": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fl := w.(http.Flusher)
			for i := 0; i < rows; i++ {
				fmt.Fprintf(w, "{\"seq\":%d}\n", i)
				fl.Flush()
				time.Sleep(interval)
			}
		},
	})
	g, err := New(Config{
		Backends:       []string{backend.URL},
		RequestTimeout: 150 * time.Millisecond, // << rows*interval = 480ms
		Logger:         slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.CheckNow(context.Background())
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/jobs/j1/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	var arrivals []time.Time
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		arrivals = append(arrivals, time.Now())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream severed mid-read: %v (got %d/%d rows)", err, len(arrivals), rows)
	}
	if len(arrivals) != rows {
		t.Fatalf("stream delivered %d rows, want %d — severed by RequestTimeout", len(arrivals), rows)
	}
	// Incremental delivery: the first row must arrive well before the
	// backend finishes emitting, not pooled until stream end.
	spread := arrivals[len(arrivals)-1].Sub(arrivals[0])
	if spread < 2*interval {
		t.Fatalf("rows arrived within %v of each other: stream was buffered, not flushed per chunk", spread)
	}
}

// TestRequestIDPropagation is the regression test for bug 3: the
// gateway must forward the inbound X-Request-ID to the backend and echo
// the backend's copy to the client, and mint one when the client sent
// none — before the fix the ID was dropped in both directions.
func TestRequestIDPropagation(t *testing.T) {
	var seen atomic.Value // X-Request-ID as received by the backend
	backend := newFakeBackend(t, map[string]http.HandlerFunc{
		"POST /v1/bus": func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get("X-Request-ID")
			seen.Store(id)
			w.Header().Set("X-Request-ID", id)
			fmt.Fprintln(w, `{}`)
		},
	})
	_, ts := newGateway(t, PolicyAffinity, backend.URL)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/bus", strings.NewReader(`{}`))
	req.Header.Set("X-Request-ID", "client-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got, _ := seen.Load().(string); got != "client-trace-42" {
		t.Fatalf("backend saw request ID %q, want the client's", got)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "client-trace-42" {
		t.Fatalf("client got request ID %q back, want its own", got)
	}

	// No inbound ID: the gateway mints a valid one and still round-trips it.
	resp2, err := http.Post(ts.URL+"/v1/bus", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	minted := resp2.Header.Get("X-Request-ID")
	if !obs.ValidTraceID(minted) {
		t.Fatalf("gateway minted invalid request ID %q", minted)
	}
	if got, _ := seen.Load().(string); got != minted {
		t.Fatalf("backend saw %q but client was told %q", got, minted)
	}
}

// TestHedgedRequestCutsTail pins the hedging contract: a primary that
// outlives the hedge delay is raced against the next-ranked backend,
// the faster response wins, the loser's cancellation does not exclude
// it, and the hedge counters tick.
func TestHedgedRequestCutsTail(t *testing.T) {
	var slowURL atomic.Value // which backend stalls, decided after ranking
	slowURL.Store("")
	handler := func(self *string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body) //nolint:errcheck
			if slowURL.Load().(string) == *self {
				select {
				case <-time.After(2 * time.Second):
				case <-r.Context().Done():
					return
				}
			}
			fmt.Fprintln(w, `{"fast": true}`)
		}
	}
	var u1, u2 string
	b1 := newFakeBackend(t, map[string]http.HandlerFunc{"POST /v1/bus": handler(&u1)})
	b2 := newFakeBackend(t, map[string]http.HandlerFunc{"POST /v1/bus": handler(&u2)})
	u1, u2 = b1.URL, b2.URL

	g, err := New(Config{
		Backends:   []string{b1.URL, b2.URL},
		Hedge:      true,
		HedgeDelay: 30 * time.Millisecond,
		Logger:     slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.CheckNow(context.Background())
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	body := `{"scheme": "dragon", "procs": 8}`
	ranked := g.rank(g.requestKey("/v1/bus", []byte(body)))
	slowURL.Store(ranked[0].url) // stall the primary; the hedge must win

	start := time.Now()
	code, data, answered := postGW(t, ts, "/v1/bus", body)
	took := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("hedged request answered %d: %s", code, data)
	}
	if answered != ranked[1].url {
		t.Fatalf("answered by %s, want the hedge target %s", answered, ranked[1].url)
	}
	if took > time.Second {
		t.Fatalf("hedge did not cut the tail: took %v", took)
	}
	if g.hedges.Load() == 0 || g.hedgeWins.Load() == 0 {
		t.Fatalf("hedge counters did not tick: hedges=%d wins=%d", g.hedges.Load(), g.hedgeWins.Load())
	}
	time.Sleep(50 * time.Millisecond) // let the loser reaper run
	for _, b := range g.snapshot() {
		if !b.healthy.Load() {
			t.Fatalf("hedge-loser cancellation excluded %s", b.url)
		}
	}
}

// TestHedgeDerivedDelayNeedsSamples pins that a derived hedge delay
// stays inactive until the latency histogram has enough observations,
// then activates at twice the observed p90 (floored).
func TestHedgeDerivedDelayNeedsSamples(t *testing.T) {
	g, err := New(Config{
		Backends: []string{"http://127.0.0.1:1"},
		Hedge:    true,
		Logger:   slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.hedgeDelay(); ok {
		t.Fatal("derived hedge delay active with an empty histogram")
	}
	for i := 0; i < hedgeMinSamples; i++ {
		g.latency.Observe(0.010) // 10ms => p90 bucket bound 10ms
	}
	d, ok := g.hedgeDelay()
	if !ok {
		t.Fatal("derived hedge delay still inactive after enough samples")
	}
	if d != 20*time.Millisecond {
		t.Fatalf("derived delay %v, want 2*p90 = 20ms", d)
	}
}

// TestWeightedRendezvous pins the weighted-HRW contract: equal weights
// reproduce the unweighted ranking exactly (no key remapping when the
// feature landed), and a weight-4 backend wins a key-space share
// proportional to its weight.
func TestWeightedRendezvous(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	quiet := slog.New(slog.NewJSONHandler(io.Discard, nil))
	plain, err := New(Config{Backends: urls, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := New(Config{Backends: []string{urls[0] + "=1", urls[1] + "=1", urls[2] + "=1"}, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := splitmix64(uint64(i))
		if plain.owner(key).url != pinned.owner(key).url {
			t.Fatalf("key %d: explicit weight 1 moved the owner (%s -> %s)",
				i, plain.owner(key).url, pinned.owner(key).url)
		}
	}

	heavy, err := New(Config{Backends: []string{urls[0] + "=4", urls[1], urls[2]}, Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	wins := map[string]int{}
	const keys = 6000
	for i := 0; i < keys; i++ {
		wins[heavy.owner(splitmix64(uint64(i))).url]++
	}
	share := float64(wins[urls[0]]) / keys
	if share < 0.60 || share > 0.73 { // expect 4/6 ≈ 0.667
		t.Fatalf("weight-4 backend won %.1f%% of keys, want ≈66.7%%: %v", share*100, wins)
	}
	w := heavy.Weights()
	if w[urls[0]] != 4 || w[urls[1]] != 1 || w[urls[2]] != 1 {
		t.Fatalf("effective weights %v", w)
	}
}

// TestAdvertisedWeightAdopted pins the other half of weighted
// rendezvous: a backend spec without a pinned weight adopts the weight
// the backend advertises on /readyz (cohered -weight).
func TestAdvertisedWeightAdopted(t *testing.T) {
	s := serve.NewServer(serve.Config{
		Weight: 3,
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(s.Close)
	t.Cleanup(ts.Close)

	g, _ := newGateway(t, PolicyAffinity, ts.URL)
	if w := g.Weights()[ts.URL]; w != 3 {
		t.Fatalf("effective weight %g, want the advertised 3", w)
	}

	// A spec-pinned weight beats the advertised one.
	pinned, err := New(Config{Backends: []string{ts.URL + "=5"},
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil))})
	if err != nil {
		t.Fatal(err)
	}
	pinned.CheckNow(context.Background())
	if w := pinned.Weights()[ts.URL]; w != 5 {
		t.Fatalf("pinned weight %g, want 5 over the advertised 3", w)
	}
}

// TestParseBackendWeights pins spec parsing: bad weights are rejected,
// good ones recorded.
func TestParseBackendWeights(t *testing.T) {
	for _, bad := range []string{"http://a=0", "http://a=-2", "http://a=x", "http://a="} {
		if _, err := parseBackends([]string{bad}); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
	set, err := parseBackends([]string{"http://a=2.5", "b:8080"})
	if err != nil {
		t.Fatal(err)
	}
	if got := set[0].pinnedWeight(); got != 2.5 {
		t.Fatalf("pinned weight %g, want 2.5", got)
	}
	if set[1].url != "http://b:8080" || set[1].pinnedWeight() != 0 {
		t.Fatalf("unweighted spec parsed as %q weight %g", set[1].url, set[1].pinnedWeight())
	}
}

// TestReloadBackendSet drives a live reload end to end: membership
// changes apply without a restart, surviving backends keep their state,
// removed backends finish in-flight requests, and the response cache is
// invalidated when the set changes.
func TestReloadBackendSet(t *testing.T) {
	_, b1 := newBackend(t)
	_, b2 := newBackend(t)
	_, b3 := newBackend(t)
	g, err := New(Config{
		Backends:         []string{b1.URL, b2.URL},
		ResponseCacheCap: 16,
		Logger:           slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.CheckNow(context.Background())
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	body := `{"scheme": "dragon", "procs": 8}`
	postGW(t, ts, "/v1/bus", body) // prime the response cache
	resp, err := http.Post(ts.URL+"/v1/bus", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(cacheHeader) != "hit" {
		t.Fatal("second identical request did not hit the response cache")
	}
	routesBefore := g.snapshot()[0].routes.Load()

	res, err := g.Reload([]string{b1.URL, b2.URL, b3.URL})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 || len(res.Removed) != 0 {
		t.Fatalf("reload result %+v, want one addition", res)
	}
	if n := len(g.snapshot()); n != 3 {
		t.Fatalf("backend set size %d after reload, want 3", n)
	}
	if g.snapshot()[0].routes.Load() != routesBefore {
		t.Fatal("surviving backend lost its counters across reload")
	}
	// The set changed: the cache must have been dropped.
	g.CheckNow(context.Background()) // pick up b3's fingerprint for re-caching
	resp2, err := http.Post(ts.URL+"/v1/bus", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get(cacheHeader) == "hit" {
		t.Fatal("response cache survived a backend-set change")
	}
	if g.reloads.Load() != 1 {
		t.Fatalf("reloads counter %d, want 1", g.reloads.Load())
	}

	// Shrink back: the removed backend leaves the routing set.
	if _, err := g.Reload([]string{b1.URL, b2.URL}); err != nil {
		t.Fatal(err)
	}
	for _, b := range g.snapshot() {
		if b.url == b3.URL {
			t.Fatal("removed backend still in the routing set")
		}
	}

	// A bad spec must leave the current set untouched.
	if _, err := g.Reload([]string{b1.URL, b1.URL}); err == nil {
		t.Fatal("duplicate backend spec accepted")
	}
	if n := len(g.snapshot()); n != 2 {
		t.Fatalf("failed reload mutated the set: %d backends", n)
	}
}

// TestReloadDrainsRemovedBackend pins draining: a request in flight on
// a backend when a reload removes it still completes.
func TestReloadDrainsRemovedBackend(t *testing.T) {
	release := make(chan struct{})
	slow := newFakeBackend(t, map[string]http.HandlerFunc{
		"POST /v1/bus": func(w http.ResponseWriter, r *http.Request) {
			<-release
			fmt.Fprintln(w, `{"drained": true}`)
		},
	})
	_, fast := newBackend(t)
	g, ts := newGateway(t, PolicyAffinity, slow.URL)

	done := make(chan error, 1)
	var got []byte
	go func() {
		resp, err := http.Post(ts.URL+"/v1/bus", "application/json", strings.NewReader(`{"scheme": "dragon", "procs": 4}`))
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		got, err = io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d: %s", resp.StatusCode, got)
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // request is now parked on the slow backend
	if _, err := g.Reload([]string{fast.URL}); err != nil {
		t.Fatal(err)
	}
	close(release) // the removed backend finishes its in-flight work
	if err := <-done; err != nil {
		t.Fatalf("in-flight request dropped by reload: %v", err)
	}
	if !strings.Contains(string(got), "drained") {
		t.Fatalf("in-flight response body %q, want the draining backend's", got)
	}
}

// TestResponseCacheBitIdentical pins the response-cache contract for
// the four paper schemes: through the gateway — cold, and again from
// the cache — the response bytes equal the direct-to-backend bytes, and
// the LRU bound holds.
func TestResponseCacheBitIdentical(t *testing.T) {
	_, b1 := newBackend(t)
	g, err := New(Config{
		Backends:         []string{b1.URL},
		ResponseCacheCap: 8,
		Logger:           slog.New(slog.NewJSONHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.CheckNow(context.Background())
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)

	for _, scheme := range []string{"base", "dragon", "swflush", "hybrid"} {
		body := fmt.Sprintf(`{"scheme": %q, "procs": 16}`, scheme)
		direct, err := http.Post(b1.URL+"/v1/bus", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := io.ReadAll(direct.Body)
		direct.Body.Close()

		_, cold, _ := postGW(t, ts, "/v1/bus", body)
		if string(cold) != string(want) {
			t.Fatalf("%s: gateway response differs from direct-to-backend:\n%s\nvs\n%s", scheme, cold, want)
		}
		resp, err := http.Post(ts.URL+"/v1/bus", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		cached, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.Header.Get(cacheHeader) != "hit" {
			t.Fatalf("%s: repeat request missed the response cache", scheme)
		}
		if string(cached) != string(want) {
			t.Fatalf("%s: cached response differs from direct-to-backend:\n%s\nvs\n%s", scheme, cached, want)
		}
	}

	// Bound: 10 distinct keys through a cap-8 cache leave 8 entries.
	for i := 0; i < 10; i++ {
		postGW(t, ts, "/v1/bus", fmt.Sprintf(`{"scheme": "dragon", "params": {"shd": %g}, "procs": 8}`, 0.05+float64(i)*0.05))
	}
	if n, _, _, _ := g.cache.stats(); n > 8 {
		t.Fatalf("response cache holds %d entries past its cap of 8", n)
	}
}

// TestSweepFanOutUnderHealthFlips hammers the sweep fan-out while a
// backend's health flips underneath it (run under -race): every 200
// must be caller-ordered and bit-identical to the direct-to-backend
// answer, and anything else must be a clean JSON error — never
// interleaved or partial results.
func TestSweepFanOutUnderHealthFlips(t *testing.T) {
	_, b1 := newBackend(t)
	s2, b2 := newBackend(t)
	g, ts := newGateway(t, PolicyAffinity, b1.URL, b2.URL)

	var points []string
	for i := 0; i < 16; i++ {
		points = append(points, fmt.Sprintf(`{"scheme": "dragon", "params": {"shd": %g}, "procs": %d, "point": true}`, 0.1+float64(i)*0.05, 4+i))
	}
	body := `{"points": [` + strings.Join(points, ",") + `]}`

	// The reference answer, from one backend with no gateway involved.
	direct, err := http.Post(b1.URL+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, _ := io.ReadAll(direct.Body)
	direct.Body.Close()
	var want struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(wantRaw, &want); err != nil {
		t.Fatal(err)
	}
	canon := func(raw json.RawMessage) string {
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("bad result row: %v", err)
		}
		b, _ := json.Marshal(v)
		return string(b)
	}
	wantRows := make([]string, len(want.Results))
	for i, r := range want.Results {
		wantRows[i] = canon(r)
	}

	stop := make(chan struct{})
	var flips sync.WaitGroup
	flips.Add(1)
	go func() {
		defer flips.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s2.SetNotReady("flipping")
			} else {
				s2.SetReady()
			}
			g.CheckNow(context.Background())
			g.CheckNow(context.Background()) // second round crosses FailThreshold
		}
	}()

	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			deadline := time.Now().Add(500 * time.Millisecond)
			for time.Now().Before(deadline) {
				code, data, _ := postGW(t, ts, "/v1/sweep", body)
				if code != http.StatusOK {
					// A clean remapped error is acceptable; torn output is not.
					var e struct {
						Error string `json:"error"`
					}
					if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
						t.Errorf("non-200 sweep answer is not a clean JSON error: %d %s", code, data)
					}
					continue
				}
				var got struct {
					Count   int               `json:"count"`
					Results []json.RawMessage `json:"results"`
				}
				if err := json.Unmarshal(data, &got); err != nil {
					t.Errorf("torn 200 response: %v", err)
					continue
				}
				if got.Count != 16 || len(got.Results) != 16 {
					t.Errorf("partial results: count=%d len=%d", got.Count, len(got.Results))
					continue
				}
				for i, r := range got.Results {
					if canon(r) != wantRows[i] {
						t.Errorf("row %d not bit-identical under health flips", i)
					}
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	flips.Wait()
	s2.SetReady()
}
