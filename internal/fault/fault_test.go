package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

// schedule runs n Points through a fresh injector with cfg and returns
// the outcome sequence as a string of 'e' (error), 'l' (latency), and
// '.' (no fault), recovering 'p' for panics.
func schedule(cfg Config, n int) string {
	in := New(cfg)
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = func() (c byte) {
			defer func() {
				if recover() != nil {
					c = 'p'
				}
			}()
			err := in.Point(context.Background())
			switch {
			case errors.Is(err, ErrInjected):
				return 'e'
			case err != nil:
				return '?'
			}
			return '.'
		}()
	}
	return string(out)
}

// TestScheduleDeterministic pins the harness's core promise: the same
// seed and probabilities produce the same fault sequence, and a
// different seed produces a different one.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, ErrorP: 0.2, PanicP: 0.1, LatencyP: 0.3}
	a := schedule(cfg, 256)
	b := schedule(cfg, 256)
	if a != b {
		t.Errorf("same seed, different schedules:\n%s\n%s", a, b)
	}
	cfg.Seed = 8
	if c := schedule(cfg, 256); c == a {
		t.Error("different seeds produced identical 256-op schedules")
	}
}

// TestScheduleMixesAllKinds checks every configured fault kind actually
// fires over a modest window and the counters account for it.
func TestScheduleMixesAllKinds(t *testing.T) {
	cfg := Config{Seed: 1, ErrorP: 0.25, PanicP: 0.25, LatencyP: 0.25}
	in := New(cfg)
	var errs, panics, clean int
	for i := 0; i < 400; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			switch err := in.Point(context.Background()); {
			case errors.Is(err, ErrInjected):
				errs++
			case err == nil:
				clean++
			default:
				t.Fatalf("unexpected error kind: %v", err)
			}
		}()
	}
	lat, e, p := in.Counts()
	if errs == 0 || panics == 0 || lat == 0 || clean == 0 {
		t.Errorf("a fault kind never fired: errs=%d panics=%d latencies=%d clean=%d", errs, panics, lat, clean)
	}
	if uint64(errs) != e || uint64(panics) != p {
		t.Errorf("counters disagree with outcomes: errs %d vs %d, panics %d vs %d", errs, e, panics, p)
	}
}

// TestLatencyHonorsCancellation checks an injected sleep is cut short by
// context cancellation and surfaces the context's error — the property
// that lets a cancelled request escape injected latency promptly.
func TestLatencyHonorsCancellation(t *testing.T) {
	in := New(Config{Seed: 1, LatencyP: 1, Latency: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := in.Point(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled injected sleep returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled sleep still took %v", elapsed)
	}
}

// TestNilInjectorInjectsNothing pins the nil-receiver contract call
// sites rely on.
func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if err := in.Point(context.Background()); err != nil {
		t.Errorf("nil injector returned %v", err)
	}
	if l, e, p := in.Counts(); l+e+p != 0 {
		t.Errorf("nil injector has counts %d/%d/%d", l, e, p)
	}
}

// TestBadConfigPanics checks malformed schedules are rejected loudly at
// construction instead of silently clamped.
func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{ErrorP: -0.1},
		{LatencyP: 1.5},
		{ErrorP: 0.6, PanicP: 0.6},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}
