package fault

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrInjected marks an operation that failed because the injector's
// schedule said so, not because the model did. The serving layer maps it
// to a retryable 503 (with a derived Retry-After), never a 500: an
// injected fault simulates a transient backend failure, and clients
// should treat it exactly like overload.
var ErrInjected = errors.New("fault: injected error")

// Config sets an Injector's seeded schedule. Probabilities are per
// operation in [0,1] and are evaluated in order error, panic, latency:
// one uniform draw per operation decides at most one fault, so the
// three probabilities must sum to at most 1.
type Config struct {
	// Seed determines the whole fault schedule. Two injectors with the
	// same Seed and the same probabilities make the same decision at the
	// same operation index, so a failing chaos run can be replayed.
	Seed int64
	// Latency is the delay injected when the schedule picks a latency
	// fault. The sleep is context-aware: a cancelled operation stops
	// sleeping immediately and returns the context's error.
	Latency time.Duration
	// LatencyP is the per-operation probability of injecting Latency.
	LatencyP float64
	// ErrorP is the per-operation probability of returning ErrInjected.
	ErrorP float64
	// PanicP is the per-operation probability of panicking, exercising
	// the serving layer's recover paths. Keep it zero outside tests.
	PanicP float64
}

// Injector injects deterministic faults — latency, errors, panics —
// into a serving path. Decisions come from a splitmix64 stream over
// (seed, operation index), so a given seed always produces the same
// fault schedule regardless of wall clock or goroutine interleaving of
// everything else. A nil *Injector is valid and injects nothing, so
// call sites need no guards.
type Injector struct {
	cfg Config
	seq atomic.Uint64

	latencies atomic.Uint64
	errors    atomic.Uint64
	panics    atomic.Uint64
}

// New returns an injector following cfg's schedule. It panics if any
// probability is outside [0,1] or the probabilities sum past 1 —
// schedules are operator input, and a silently clamped schedule would
// make a chaos run lie about what it tested.
func New(cfg Config) *Injector {
	for _, p := range []float64{cfg.LatencyP, cfg.ErrorP, cfg.PanicP} {
		if p < 0 || p > 1 {
			panic("fault: probability outside [0,1]")
		}
	}
	if cfg.LatencyP+cfg.ErrorP+cfg.PanicP > 1 {
		panic("fault: probabilities sum past 1")
	}
	return &Injector{cfg: cfg}
}

// splitmix64 is the SplitMix64 mixing function: a bijective avalanche
// over uint64, so consecutive inputs yield statistically independent
// outputs. It is the same mixer cohereload uses to derive per-worker
// RNG seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a uint64 to [0,1) using the top 53 bits, the float64
// mantissa width.
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}

// Point runs the fault decision for the next operation in the schedule:
// it returns ErrInjected, panics, sleeps the configured latency
// (context-aware — a cancelled ctx cuts the sleep short and its error
// is returned), or does nothing, per the seeded schedule. Safe for
// concurrent use; a nil receiver does nothing.
func (in *Injector) Point(ctx context.Context) error {
	if in == nil {
		return nil
	}
	n := in.seq.Add(1)
	u := unit(splitmix64(uint64(in.cfg.Seed) ^ splitmix64(n)))
	switch {
	case u < in.cfg.ErrorP:
		in.errors.Add(1)
		return ErrInjected
	case u < in.cfg.ErrorP+in.cfg.PanicP:
		in.panics.Add(1)
		panic("fault: injected panic")
	case u < in.cfg.ErrorP+in.cfg.PanicP+in.cfg.LatencyP:
		in.latencies.Add(1)
		t := time.NewTimer(in.cfg.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Counts reports how many of each fault kind the injector has fired:
// injected latencies (including sleeps cut short by cancellation),
// injected errors, and injected panics.
func (in *Injector) Counts() (latencies, errs, panics uint64) {
	if in == nil {
		return 0, 0, 0
	}
	return in.latencies.Load(), in.errors.Load(), in.panics.Load()
}
