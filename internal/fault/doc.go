// Package fault is the deterministic fault-injection harness behind
// chaos testing: an Injector makes a seeded, replayable schedule of
// injected latencies, injected errors, and injected panics that the
// serving layer consults once per model operation.
//
// The point of determinism is that a chaos run is an experiment, not a
// dice roll: the same seed and probabilities produce the same decision
// at the same operation index, so a failure found under injection can
// be replayed, bisected, and pinned by tests. Decisions are drawn from
// a splitmix64 stream over (seed, operation counter); nothing reads the
// wall clock or a global RNG.
//
// Consumers: internal/serve takes an *Injector in its Config and calls
// Point before every model solve (and every /v1/sweep grid point);
// cmd/cohered exposes the schedule as -fault-* flags; cmd/cohereload
// -chaos boots an in-process daemon with an injector at saturation and
// asserts the overload contract (503s with Retry-After, zero 500s).
// A nil *Injector injects nothing, so the production path pays one nil
// check.
package fault
