// Package queueing provides exact solvers for the closed queueing models
// used by the analytical cache-coherence model: Mean Value Analysis (MVA)
// for closed product-form networks, and the Patel fixed-point model for
// unbuffered circuit-switched multistage interconnection networks.
//
// The bus contention model of Owicki & Agarwal is a machine-repairman
// system: N processors (customers) alternate between a think phase of
// Z = c-b cycles and a bus transaction of b cycles at a single FCFS
// server with exponentially distributed service. MVA solves this exactly.
package queueing

import (
	"errors"
	"fmt"
)

// ErrInvalidInput reports a queueing model invoked with parameters outside
// its domain (negative demands, non-positive populations, and so on).
var ErrInvalidInput = errors.New("queueing: invalid input")

// SingleServerResult holds the solution of the single-server closed
// queueing network for one population size.
type SingleServerResult struct {
	// Customers is the population N the metrics refer to.
	Customers int
	// Residence is the mean time a transaction spends at the server,
	// queueing plus service (R in MVA terms), in cycles.
	Residence float64
	// Wait is the mean queueing delay excluding service, in cycles.
	Wait float64
	// Throughput is the system throughput in transactions per cycle.
	Throughput float64
	// QueueLength is the mean number of customers at the server
	// (queued or in service).
	QueueLength float64
	// Utilization is the fraction of time the server is busy.
	Utilization float64
}

// SingleServerMVA solves a closed queueing network with one queueing
// station of mean service demand `service` and a delay (think) station of
// mean `think`, for populations 1..customers. It returns one result per
// population, so callers that sweep processor counts get the whole curve
// from a single O(N) recursion.
//
// This is the bus contention model: think = c-b, service = b.
func SingleServerMVA(think, service float64, customers int) ([]SingleServerResult, error) {
	return ExtendSingleServerMVA(think, service, nil, customers, nil)
}

// ExtendSingleServerMVA resumes the single-server MVA recursion from a
// previously computed prefix: given the solution for populations
// 1..len(prefix), it produces the solution for 1..customers without
// redoing the prefix. The recursion's only inter-population state is the
// mean queue length, so resuming from prefix's last QueueLength yields
// results bit-identical to a full solve — both paths run the exact same
// loop body over the same float64 sequence.
//
// The prefix is copied: callers may pass a slice that other goroutines
// are reading concurrently (e.g. a published cache entry) and the result
// never writes through it. When dst has capacity for customers results
// it is reused as the backing array; otherwise a fresh slice is
// allocated. dst may share prefix's backing array only when both start
// at the same element (in-place growth of a private buffer) — a
// partially overlapping dst would corrupt the prefix copy. A nil prefix
// is a full solve from population 1.
func ExtendSingleServerMVA(think, service float64, prefix []SingleServerResult, customers int, dst []SingleServerResult) ([]SingleServerResult, error) {
	if customers < 1 {
		return nil, fmt.Errorf("%w: customers %d < 1", ErrInvalidInput, customers)
	}
	if think < 0 || service < 0 {
		return nil, fmt.Errorf("%w: think %g or service %g negative", ErrInvalidInput, think, service)
	}
	if len(prefix) > customers {
		prefix = prefix[:customers]
	}
	var results []SingleServerResult
	if cap(dst) >= customers {
		results = dst[:customers]
	} else {
		results = make([]SingleServerResult, customers)
	}
	copy(results, prefix)
	q := 0.0 // queue length with n-1 customers
	if n := len(prefix); n > 0 {
		q = prefix[n-1].QueueLength
	}
	for n := len(prefix) + 1; n <= customers; n++ {
		r := service * (1 + q)
		var x float64
		if think+r > 0 {
			x = float64(n) / (think + r)
		}
		q = x * r
		results[n-1] = SingleServerResult{
			Customers:   n,
			Residence:   r,
			Wait:        r - service,
			Throughput:  x,
			QueueLength: q,
			Utilization: x * service,
		}
	}
	return results, nil
}

// Station describes one queueing or delay station in a closed network.
type Station struct {
	// Name identifies the station in results.
	Name string
	// Demand is the total mean service demand per customer cycle,
	// i.e. visit ratio times mean service time.
	Demand float64
	// Delay marks a pure delay (infinite-server) station: customers
	// never queue, they just spend Demand time there.
	Delay bool
}

// NetworkResult holds the MVA solution of a multi-station closed network
// at one population.
type NetworkResult struct {
	// Customers is the population N the metrics refer to.
	Customers int
	// Throughput is the system throughput in customers per cycle.
	Throughput float64
	// CycleTime is the mean time for one customer to traverse all
	// stations once (N / Throughput).
	CycleTime float64
	// Residence[i] is the residence time at station i.
	Residence []float64
	// QueueLength[i] is the mean queue length at station i.
	QueueLength []float64
	// Utilization[i] is Demand*Throughput for queueing stations and
	// the mean population for delay stations.
	Utilization []float64
}

// ClosedMVA solves a closed product-form network with the given stations
// for populations 1..customers, returning one result per population.
func ClosedMVA(stations []Station, customers int) ([]NetworkResult, error) {
	if customers < 1 {
		return nil, fmt.Errorf("%w: customers %d < 1", ErrInvalidInput, customers)
	}
	if len(stations) == 0 {
		return nil, fmt.Errorf("%w: no stations", ErrInvalidInput)
	}
	for _, s := range stations {
		if s.Demand < 0 {
			return nil, fmt.Errorf("%w: station %q demand %g negative", ErrInvalidInput, s.Name, s.Demand)
		}
	}
	k := len(stations)
	q := make([]float64, k) // queue lengths with n-1 customers
	results := make([]NetworkResult, customers)
	for n := 1; n <= customers; n++ {
		res := NetworkResult{
			Customers:   n,
			Residence:   make([]float64, k),
			QueueLength: make([]float64, k),
			Utilization: make([]float64, k),
		}
		total := 0.0
		for i, s := range stations {
			if s.Delay {
				res.Residence[i] = s.Demand
			} else {
				res.Residence[i] = s.Demand * (1 + q[i])
			}
			total += res.Residence[i]
		}
		var x float64
		if total > 0 {
			x = float64(n) / total
		}
		res.Throughput = x
		res.CycleTime = total
		for i, s := range stations {
			q[i] = x * res.Residence[i]
			res.QueueLength[i] = q[i]
			if s.Delay {
				res.Utilization[i] = q[i]
			} else {
				res.Utilization[i] = x * s.Demand
			}
		}
		results[n-1] = res
	}
	return results, nil
}
