package queueing

import (
	"fmt"
	"math"
)

// LoadDependentResult is the solution of a machine-repairman system with
// a load-dependent server for one population.
type LoadDependentResult struct {
	// Customers is the population.
	Customers int
	// Throughput is completions per cycle.
	Throughput float64
	// QueueLength is the mean number of customers at the server.
	QueueLength float64
	// Residence is the mean time at the server per visit (Little).
	Residence float64
	// Idle is the probability the server is empty.
	Idle float64
}

// LoadDependentMVA solves a closed system of `customers` customers that
// think for mean `think` cycles and then queue at a server whose
// completion rate with k customers present is rate(k) (completions per
// cycle, k >= 1). The solution is the exact birth-death stationary
// distribution: lambda(k) = (n-k)/think, mu(k) = rate(k).
//
// This is the contention model the paper's footnote 2 sketches for
// multistage networks: "the multistage network is represented as a
// load-dependent service center characterised by its service rate at
// various loads."
func LoadDependentMVA(think float64, rate func(k int) float64, customers int) ([]LoadDependentResult, error) {
	if customers < 1 {
		return nil, fmt.Errorf("%w: customers %d < 1", ErrInvalidInput, customers)
	}
	if think <= 0 {
		return nil, fmt.Errorf("%w: think %g must be positive (instant re-request makes the chain degenerate)", ErrInvalidInput, think)
	}
	if rate == nil {
		return nil, fmt.Errorf("%w: nil rate function", ErrInvalidInput)
	}
	results := make([]LoadDependentResult, customers)
	for n := 1; n <= customers; n++ {
		// Unnormalized stationary probabilities p[k], k customers at
		// the server.
		p := make([]float64, n+1)
		p[0] = 1
		for k := 1; k <= n; k++ {
			mu := rate(k)
			if mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
				return nil, fmt.Errorf("%w: rate(%d) = %g", ErrInvalidInput, k, mu)
			}
			lambda := float64(n-k+1) / think
			p[k] = p[k-1] * lambda / mu
		}
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		var x, q float64
		for k := 1; k <= n; k++ {
			prob := p[k] / sum
			x += prob * rate(k)
			q += prob * float64(k)
		}
		res := LoadDependentResult{
			Customers:   n,
			Throughput:  x,
			QueueLength: q,
			Idle:        p[0] / sum,
		}
		if x > 0 {
			res.Residence = q / x
		}
		results[n-1] = res
	}
	return results, nil
}
