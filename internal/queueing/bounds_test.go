package queueing

import (
	"testing"
	"testing/quick"
)

func TestBoundsBracketMVA(t *testing.T) {
	f := func(thinkRaw, serviceRaw uint16, nRaw uint8) bool {
		think := float64(thinkRaw%1000) / 10
		service := float64(serviceRaw%200)/10 + 0.1
		n := int(nRaw%30) + 1
		mva, err := SingleServerMVA(think, service, n)
		if err != nil {
			return false
		}
		b, err := SingleServerBounds(think, service, n)
		if err != nil {
			return false
		}
		x := mva[n-1].Throughput
		return x >= b.ThroughputLower-1e-9 && x <= b.ThroughputUpper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoundsTightAtExtremes(t *testing.T) {
	// n = 1: both bounds coincide with the exact value.
	b, err := SingleServerBounds(20, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact := 1.0 / 25.0
	if !almostEqual(b.ThroughputLower, exact, 1e-12) || !almostEqual(b.ThroughputUpper, exact, 1e-12) {
		t.Errorf("n=1 bounds [%g, %g] should equal %g", b.ThroughputLower, b.ThroughputUpper, exact)
	}
	// Huge n: upper bound is the saturation cap and the exact value
	// converges to it.
	b, err = SingleServerBounds(20, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if b.ThroughputUpper != 0.2 {
		t.Errorf("saturated upper bound = %g, want 0.2", b.ThroughputUpper)
	}
	mva, err := SingleServerMVA(20, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if mva[999].Throughput < 0.199 {
		t.Errorf("exact throughput %g far from cap", mva[999].Throughput)
	}
}

func TestKneePopulation(t *testing.T) {
	b, err := SingleServerBounds(20, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b.KneePopulation != 5 {
		t.Errorf("knee = %g, want (20+5)/5 = 5", b.KneePopulation)
	}
	// The knee matches the paper's saturation intuition: below it the
	// optimistic linear bound applies, above it the cap.
	below, _ := SingleServerBounds(20, 5, 4)
	if below.ThroughputUpper >= b.Saturation {
		t.Error("below the knee the linear bound should bind")
	}
}

func TestBoundsErrors(t *testing.T) {
	if _, err := SingleServerBounds(1, 1, 0); err == nil {
		t.Error("want error for zero customers")
	}
	if _, err := SingleServerBounds(-1, 1, 2); err == nil {
		t.Error("want error for negative think")
	}
	if _, err := SingleServerBounds(1, 0, 2); err == nil {
		t.Error("want error for zero service")
	}
}
