package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStagesFor(t *testing.T) {
	cases := []struct{ nproc, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{16, 4}, {64, 6}, {256, 8}, {1024, 10},
	}
	for _, c := range cases {
		if got := StagesFor(c.nproc); got != c.want {
			t.Errorf("StagesFor(%d) = %d, want %d", c.nproc, got, c.want)
		}
	}
}

func TestPatelProcessors(t *testing.T) {
	if got := NewPatelNetwork(8).Processors(); got != 256 {
		t.Errorf("8-stage network has %d processors, want 256", got)
	}
	pn := PatelNetwork{Stages: 3, SwitchSize: 4}
	if got := pn.Processors(); got != 64 {
		t.Errorf("3-stage 4x4 network has %d processors, want 64", got)
	}
}

func TestForwardSingleStage(t *testing.T) {
	pn := NewPatelNetwork(1)
	// m' = 1 - (1 - m/2)^2 = m - m^2/4
	for _, m := range []float64{0, 0.1, 0.5, 1} {
		want := m - m*m/4
		if got := pn.Forward(m); !almostEqual(got, want, 1e-12) {
			t.Errorf("Forward(%g) = %g, want %g", m, got, want)
		}
	}
}

func TestForwardMonotoneAndContracting(t *testing.T) {
	pn := NewPatelNetwork(6)
	prev := -1.0
	for m := 0.0; m <= 1.0; m += 0.01 {
		out := pn.Forward(m)
		if out < prev {
			t.Fatalf("Forward not monotone at m=%g", m)
		}
		if out > m+1e-15 {
			t.Fatalf("Forward(%g) = %g exceeds input: blocking can only drop requests", m, out)
		}
		prev = out
	}
}

func TestSolvePatelLightLoad(t *testing.T) {
	pn := NewPatelNetwork(8)
	// Tiny load: utilization must approach (c-b)/c behaviorally, here
	// represented as U -> 1/(1+mt) when blocking is negligible.
	res, err := pn.SolvePatel(0.0001, 2)
	if err != nil {
		t.Fatal(err)
	}
	mt := 0.0001 * 2
	want := 1 / (1 + mt)
	if !almostEqual(res.Utilization, want, 1e-3) {
		t.Errorf("light-load U = %g, want ~%g", res.Utilization, want)
	}
}

func TestSolvePatelZeroLoad(t *testing.T) {
	pn := NewPatelNetwork(4)
	res, err := pn.SolvePatel(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization != 1 {
		t.Errorf("zero load U = %g, want 1", res.Utilization)
	}
}

func TestSolvePatelFixedPointConsistency(t *testing.T) {
	pn := NewPatelNetwork(8)
	for _, tc := range []struct{ rate, size float64 }{
		{0.01, 20}, {0.03, 20}, {0.05, 12}, {0.1, 4}, {0.2, 17},
	} {
		res, err := pn.SolvePatel(tc.rate, tc.size)
		if err != nil {
			t.Fatal(err)
		}
		u := res.Utilization
		if u < 1 {
			// Check U = Forward(1-U)/(m t) holds at the solution.
			rhs := pn.Forward(1-u) / (tc.rate * tc.size)
			if !almostEqual(u, rhs, 1e-6) {
				t.Errorf("rate=%g size=%g: U=%g but Forward(1-U)/mt=%g", tc.rate, tc.size, u, rhs)
			}
		}
		if res.Acceptance < 0 || res.Acceptance > 1+1e-9 {
			t.Errorf("acceptance %g out of range", res.Acceptance)
		}
	}
}

func TestSolvePatelPaperAnchor(t *testing.T) {
	// Section 6.3: "for a cache-miss rate as low as 3% in the
	// 256-processor system and a message size of 4 words
	// (corresponding to a unit-time service request rate of
	// 3% x (16+4) = 60%), the processor utilization is halved."
	pn := NewPatelNetwork(8)
	res, err := pn.SolvePatel(0.03, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization > 0.62 || res.Utilization < 0.35 {
		t.Errorf("paper anchor: U = %g, want roughly halved (~0.4-0.6)", res.Utilization)
	}
}

func TestSolvePatelMonotoneInLoad(t *testing.T) {
	pn := NewPatelNetwork(8)
	prev := 2.0
	for rate := 0.005; rate < 0.5; rate += 0.005 {
		res, err := pn.SolvePatel(rate, 8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Utilization > prev+1e-9 {
			t.Fatalf("utilization increased with load at rate=%g", rate)
		}
		prev = res.Utilization
	}
}

func TestSolvePatelErrors(t *testing.T) {
	if _, err := (PatelNetwork{Stages: 0, SwitchSize: 2}).SolvePatel(0.1, 1); err == nil {
		t.Error("want error for zero stages")
	}
	if _, err := NewPatelNetwork(2).SolvePatel(-1, 1); err == nil {
		t.Error("want error for negative rate")
	}
	if _, err := NewPatelNetwork(2).SolvePatel(1, -1); err == nil {
		t.Error("want error for negative size")
	}
}

func TestSolvePatelProperties(t *testing.T) {
	f := func(stagesRaw, rateRaw, sizeRaw uint8) bool {
		stages := int(stagesRaw%10) + 1
		rate := float64(rateRaw) / 512
		size := float64(sizeRaw%40) + 1
		res, err := NewPatelNetwork(stages).SolvePatel(rate, size)
		if err != nil {
			return false
		}
		return res.Utilization >= 0 && res.Utilization <= 1 &&
			res.InputRate >= 0 && res.InputRate <= 1 &&
			res.OutputRate <= res.InputRate+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveBufferedLightLoad(t *testing.T) {
	bn := BufferedNetwork{Stages: 8}
	res, err := bn.SolveBuffered(100, 1.0/96, 4)
	if err != nil {
		t.Fatal(err)
	}
	// think = 96, transit+serialization = 12, low queueing: cycle
	// ~ slightly above 108 cycles.
	if res.Utilization > 1.0/107 || res.Utilization < 1.0/112 {
		t.Errorf("light-load buffered U = %g, want ~1/108", res.Utilization)
	}
	if res.Saturated {
		t.Error("light load must not saturate")
	}
}

func TestSolveBufferedZeroLoad(t *testing.T) {
	bn := BufferedNetwork{Stages: 4}
	res, err := bn.SolveBuffered(5, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Utilization, 0.2, 1e-12) {
		t.Errorf("zero-load U = %g, want 0.2", res.Utilization)
	}
}

func TestSolveBufferedVsCircuitShortMessages(t *testing.T) {
	// The paper's future-work claim: packet switching favors
	// No-Cache-style traffic (many short messages) because it removes
	// the per-transaction circuit set-up cost. For 1-word messages at
	// a moderate rate, buffered latency per transaction must be well
	// below the circuit 2n+1 cost regime, i.e. buffered utilization
	// should beat the circuit-switched model's.
	stages := 8
	rate, size := 0.05, 1.0
	circ, err := NewPatelNetwork(stages).SolvePatel(rate, size+2*float64(stages))
	if err != nil {
		t.Fatal(err)
	}
	// Map circuit U to bus-comparable utilization: U/(c-b) with
	// c-b = 1/rate.
	circUtil := circ.Utilization * rate
	buf, err := BufferedNetwork{Stages: stages}.SolveBuffered(1/rate+size, rate, size)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Utilization <= circUtil {
		t.Errorf("buffered (%g) should beat circuit-switched (%g) for short messages", buf.Utilization, circUtil)
	}
}

func TestSolveBufferedSelfLimiting(t *testing.T) {
	// A closed system cannot offer more than port capacity: under a
	// huge nominal rate the cycle time stretches so that the port load
	// stays below 1 and utilization stays below the 1/size throughput
	// bound.
	bn := BufferedNetwork{Stages: 4}
	res, err := bn.SolveBuffered(10, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.PortLoad >= 1 {
		t.Errorf("closed system port load %g must stay below 1", res.PortLoad)
	}
	if res.Utilization > 1.0/8+1e-9 {
		t.Errorf("utilization %g exceeds port throughput bound %g", res.Utilization, 1.0/8)
	}
}

func TestSolveBufferedErrors(t *testing.T) {
	if _, err := (BufferedNetwork{Stages: 0}).SolveBuffered(1, 1, 1); err == nil {
		t.Error("want error for zero stages")
	}
	if _, err := (BufferedNetwork{Stages: 2}).SolveBuffered(0, 1, 1); err == nil {
		t.Error("want error for zero cpu")
	}
	if _, err := (BufferedNetwork{Stages: 2}).SolveBuffered(1, -1, 1); err == nil {
		t.Error("want error for negative rate")
	}
}

func TestSolveBufferedFinite(t *testing.T) {
	f := func(stagesRaw, rateRaw, sizeRaw uint8) bool {
		stages := int(stagesRaw%10) + 1
		rate := float64(rateRaw)/300 + 0.001
		size := float64(sizeRaw % 32)
		res, err := BufferedNetwork{Stages: stages}.SolveBuffered(1/rate+size+1, rate, size)
		if err != nil {
			return false
		}
		return !math.IsNaN(res.Utilization) && !math.IsInf(res.Utilization, 0) &&
			res.Utilization > 0 && res.Utilization <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
