package queueing

import (
	"errors"
	"math"
	"testing"
)

// TestPriorityDegenerateMatchesFCFS pins the seam the bus model's
// dispatch relies on: with either class empty, the priority recurrence
// must reproduce the FCFS solver bit-exactly, so "no high-priority
// demand" and "FCFS" are the same model, not merely close.
func TestPriorityDegenerateMatchesFCFS(t *testing.T) {
	const think, service = 3.75, 0.25
	want, err := SingleServerMVA(think, service, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		hi, lo float64
	}{
		{"all low", 0, service},
		{"all high", service, 0},
	} {
		got, err := PrioritySingleServerMVA(think, tc.hi, tc.lo, 64, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: population %d differs:\n prio %+v\n fcfs %+v",
					tc.name, i+1, got[i], want[i])
			}
		}
	}
}

// TestPrioritySplitProperties checks the approximation behaves like a
// priority discipline: same total utilization law as FCFS at equal
// total demand, and residence no better than the contention-free floor.
func TestPrioritySplitProperties(t *testing.T) {
	const think, hi, lo = 3.0, 0.2, 0.3
	res, err := PrioritySingleServerMVA(think, hi, lo, 128, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Customers != i+1 {
			t.Fatalf("Customers = %d at index %d", r.Customers, i)
		}
		if r.Residence < hi+lo-1e-12 {
			t.Errorf("n=%d: residence %g below service demand", r.Customers, r.Residence)
		}
		if r.Wait < -1e-12 {
			t.Errorf("n=%d: negative wait %g", r.Customers, r.Wait)
		}
		if got, want := r.Utilization, r.Throughput*(hi+lo); math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d: utilization %g != throughput*service %g", r.Customers, got, want)
		}
		if r.Utilization > 1+1e-9 {
			t.Errorf("n=%d: utilization %g exceeds 1", r.Customers, r.Utilization)
		}
		if i > 0 && r.Residence < res[i-1].Residence-1e-12 {
			t.Errorf("n=%d: residence not monotone (%g < %g)", r.Customers, r.Residence, res[i-1].Residence)
		}
	}
	// Saturation: throughput approaches the 1/(hi+lo) service ceiling.
	last := res[len(res)-1]
	if ceil := 1 / (hi + lo); last.Throughput > ceil+1e-9 || last.Throughput < 0.9*ceil {
		t.Errorf("saturated throughput %g, ceiling %g", last.Throughput, ceil)
	}
}

// TestPriorityTracksFCFSTotals: the split server models the same total
// demand as FCFS, so the combined residence must track the FCFS curve
// closely (the shadow-server approximation reshuffles waiting between
// classes, it does not change the server), it must genuinely differ
// from FCFS (otherwise the dispatch seam is untestable), and the
// saturation throughput ceiling 1/(hi+lo) must be shared.
func TestPriorityTracksFCFSTotals(t *testing.T) {
	const think, hi, lo = 2.0, 0.3, 0.3
	fcfs, err := SingleServerMVA(think, hi+lo, 64)
	if err != nil {
		t.Fatal(err)
	}
	prio, err := PrioritySingleServerMVA(think, hi, lo, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := range fcfs {
		f, p := fcfs[i].Residence, prio[i].Residence
		if math.Abs(p-f) > 0.15*f {
			t.Errorf("n=%d: priority residence %g drifts >15%% from FCFS %g", i+1, p, f)
		}
		if p != f {
			differs = true
		}
	}
	if !differs {
		t.Error("priority curve is bit-identical to FCFS; split has no effect")
	}
	if f, p := fcfs[63].Throughput, prio[63].Throughput; math.Abs(p-f) > 0.01*f {
		t.Errorf("saturated throughput: priority %g vs FCFS %g", p, f)
	}
}

// TestPriorityReusesDst pins the buffer contract shared with the FCFS
// solvers: sufficient capacity means dst's backing array is reused.
func TestPriorityReusesDst(t *testing.T) {
	dst := make([]SingleServerResult, 0, 32)
	got, err := PrioritySingleServerMVA(1, 0.1, 0.2, 16, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &dst[:1][0] {
		t.Error("dst with sufficient capacity was not reused")
	}
}

func TestPriorityErrors(t *testing.T) {
	if _, err := PrioritySingleServerMVA(1, 0.1, 0.1, 0, nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("customers 0: %v", err)
	}
	if _, err := PrioritySingleServerMVA(-1, 0.1, 0.1, 4, nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative think: %v", err)
	}
	if _, err := PrioritySingleServerMVA(1, -0.1, 0.1, 4, nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative hi: %v", err)
	}
	if _, err := PrioritySingleServerMVA(1, 0.1, -0.1, 4, nil); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative lo: %v", err)
	}
}
