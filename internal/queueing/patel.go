package queueing

import (
	"fmt"
	"math"
)

// PatelNetwork models an unbuffered, circuit-switched multistage
// interconnection network (Banyan / Omega / Delta) built from SwitchSize x
// SwitchSize crossbars, following Patel's analysis under the unit-request
// approximation. A network with Stages stages connects
// SwitchSize^Stages processors to as many memory modules.
type PatelNetwork struct {
	// Stages is the number of switch stages (n); the machine has
	// SwitchSize^Stages processors.
	Stages int
	// SwitchSize is the crossbar dimension; the paper uses 2x2
	// switches.
	SwitchSize int
}

// NewPatelNetwork returns a network of 2x2 crossbars with the given number
// of stages.
func NewPatelNetwork(stages int) PatelNetwork {
	return PatelNetwork{Stages: stages, SwitchSize: 2}
}

// StagesFor returns the number of 2x2 switch stages needed for nproc
// processors (ceil(log2 nproc)), minimum 1.
func StagesFor(nproc int) int {
	if nproc <= 2 {
		return 1
	}
	n := 0
	for p := 1; p < nproc; p *= 2 {
		n++
	}
	return n
}

// Processors returns the number of processors the network connects.
func (pn PatelNetwork) Processors() int {
	p := 1
	for i := 0; i < pn.Stages; i++ {
		p *= pn.switchSize()
	}
	return p
}

func (pn PatelNetwork) switchSize() int {
	if pn.SwitchSize <= 0 {
		return 2
	}
	return pn.SwitchSize
}

// Forward propagates a per-port request probability m0 through the switch
// stages and returns the output-port request probability after the last
// stage. Each k x k switch output sees k inputs each requesting it with
// probability m/k; the output is busy unless all k decline:
//
//	m' = 1 - (1 - m/k)^k
func (pn PatelNetwork) Forward(m0 float64) float64 {
	k := float64(pn.switchSize())
	m := m0
	for i := 0; i < pn.Stages; i++ {
		m = 1 - math.Pow(1-m/k, k)
	}
	return m
}

// PatelResult is the fixed-point solution of the Patel model for one
// workload point.
type PatelResult struct {
	// Utilization is the fraction of time a processor is doing
	// (possibly overhead) CPU work rather than blocked on the network:
	// U = m_n / (m*t).
	Utilization float64
	// InputRate is m_0 = 1-U, the probability a request (new or
	// retried) occupies a network input port in a cycle.
	InputRate float64
	// OutputRate is m_n, the per-port accepted unit-request throughput.
	OutputRate float64
	// Acceptance is OutputRate/InputRate, the probability an offered
	// unit request survives all stages in one attempt.
	Acceptance float64
	// Iterations is the number of bisection steps used.
	Iterations int
}

// SolvePatel computes the self-consistent processor utilization for a
// workload that generates transactions at rate `rate` (transactions per
// CPU cycle, m = 1/(c-b)) of mean size `size` (network cycles per
// transaction, t = b) on the given network.
//
// The fixed point solves
//
//	U = m_n / (m*t),  m_0 = 1 - U,  m_{i+1} = 1 - (1 - m_i/k)^k.
//
// Define g(U) = Forward(1-U)/(m*t) - U. g(0) = Forward(1)/(m*t) >= 0 and
// g(1) = -1 < 0, and g is strictly decreasing in U (Forward is increasing
// in its argument), so the root is unique; we find it by bisection.
//
// When m*t == 0 the workload never touches the network and U = 1.
func (pn PatelNetwork) SolvePatel(rate, size float64) (PatelResult, error) {
	if pn.Stages < 1 {
		return PatelResult{}, fmt.Errorf("%w: stages %d < 1", ErrInvalidInput, pn.Stages)
	}
	if rate < 0 || size < 0 {
		return PatelResult{}, fmt.Errorf("%w: rate %g or size %g negative", ErrInvalidInput, rate, size)
	}
	mt := rate * size
	if mt == 0 {
		return PatelResult{Utilization: 1, Acceptance: 1}, nil
	}
	lo, hi := 0.0, 1.0
	g := func(u float64) float64 { return pn.Forward(1-u)/mt - u }
	// The unconstrained fixed point can exceed 1 when the workload is
	// light (mt small): then the processor is never network-limited.
	if g(1) >= 0 {
		return PatelResult{Utilization: 1, InputRate: 0, OutputRate: mt, Acceptance: 1}, nil
	}
	var u float64
	iters := 0
	for i := 0; i < 200; i++ {
		iters++
		u = (lo + hi) / 2
		if hi-lo < 1e-14 {
			break
		}
		if g(u) > 0 {
			lo = u
		} else {
			hi = u
		}
	}
	m0 := 1 - u
	mn := pn.Forward(m0)
	acc := 1.0
	if m0 > 0 {
		acc = mn / m0
	}
	return PatelResult{
		Utilization: u,
		InputRate:   m0,
		OutputRate:  mn,
		Acceptance:  acc,
		Iterations:  iters,
	}, nil
}

// BufferedNetwork extends the model to a buffered packet-switched
// multistage network (the paper's Section 7 future-work variant). Each
// stage is approximated as an M/M/1 queue whose arrival rate is the
// per-port packet rate and whose service time is one switch cycle; a
// transaction of size t is t back-to-back packets plus the pipeline
// transit. This deliberately removes the circuit set-up cost 2n per
// transaction that dominates the circuit-switched model, which is why
// packet switching favors high-rate/short-message workloads (No-Cache).
type BufferedNetwork struct {
	// Stages is the number of switch stages.
	Stages int
}

// BufferedResult is the solution of the buffered packet-switched model.
type BufferedResult struct {
	// Utilization is the bus-comparable processor utilization
	// 1/(cpu + wait).
	Utilization float64
	// Latency is the mean one-way network latency per transaction in
	// cycles (transit plus queueing plus serialization).
	Latency float64
	// PortLoad is the per-port packet rate (must be < 1 for
	// stability).
	PortLoad float64
	// Saturated reports that the offered load exceeded port capacity;
	// Utilization is then the saturation bound.
	Saturated bool
}

// SolveBuffered computes processor utilization for a packet-switched
// network. cpu is the total CPU cycles per instruction (c), rate the
// transaction rate per non-network cycle (1/(c-b)), and size the packets
// per transaction (message words, without the 2n circuit overhead).
//
// The solution iterates: given waiting w, instructions take c+w cycles,
// so the per-port packet rate is size/(c-b+w+size)... more precisely the
// processor cycle is think (c-b) + latency; the port carries size packets
// per cycle of that period. Queueing per stage is rho/(1-rho) with
// rho = port load.
func (bn BufferedNetwork) SolveBuffered(cpu, rate, size float64) (BufferedResult, error) {
	if bn.Stages < 1 {
		return BufferedResult{}, fmt.Errorf("%w: stages %d < 1", ErrInvalidInput, bn.Stages)
	}
	if cpu <= 0 || rate < 0 || size < 0 {
		return BufferedResult{}, fmt.Errorf("%w: cpu %g, rate %g, size %g", ErrInvalidInput, cpu, rate, size)
	}
	if rate == 0 || size == 0 {
		return BufferedResult{Utilization: 1 / cpu}, nil
	}
	think := 1 / rate // c - b in cycles
	n := float64(bn.Stages)
	// Fixed-point on the cycle period T = think + latency.
	// Port load rho = size / T. Latency = n (transit) + size
	// (serialization) + n*rho/(1-rho) (queueing).
	t := think + n + size
	var latency, rho float64
	saturated := false
	for i := 0; i < 1000; i++ {
		rho = size / t
		if rho >= 0.999 {
			rho = 0.999
			saturated = true
		}
		latency = n + size + n*rho/(1-rho)
		next := think + latency
		if math.Abs(next-t) < 1e-12 {
			t = next
			break
		}
		t = 0.5*t + 0.5*next // damped to guarantee convergence
	}
	// One instruction takes think + latency total cycles, of which 1
	// was useful; align with the bus metric U = 1/(c+w) by noting
	// think = c-b and size here plays b's serialization role.
	u := 1 / t
	if saturated {
		// Throughput bound: one port delivers 1 packet/cycle, so at
		// most 1/size transactions per cycle, i.e. utilization
		// 1/size transactions * 1 instruction each.
		u = math.Min(u, 1/size)
	}
	return BufferedResult{
		Utilization: u,
		Latency:     latency,
		PortLoad:    rho,
		Saturated:   saturated,
	}, nil
}
