package queueing

import "fmt"

// PrioritySingleServerMVA solves the machine-repairman model with a
// two-class priority (head-of-line, non-preemptive approximation) server
// instead of FCFS, for populations 1..customers: each transaction a
// customer issues is a high-priority service of mean `hi` followed by
// (conceptually, split from) a low-priority service of mean `lo`, with
// hi+lo equal to the FCFS model's service demand. The high class is
// served ahead of queued low-class work; the low class sees a server
// slowed by high-class utilization (the standard MVA shadow-server
// approximation for priority scheduling: Bryant et al., and the
// FCFS-versus-priority bus studies the PriorityBus scheme follows).
//
// Degenerate classes reduce the recurrence to the FCFS one bit-exactly:
// with hi = 0 the high class contributes nothing and the shadow factor
// is 1-0, so lo behaves exactly like FCFS service; with lo = 0 only the
// high class remains, which queues like FCFS. Callers may therefore
// dispatch on "any high-priority demand?" without worrying about a seam
// at the boundary.
//
// Results have the same shape as the FCFS solver: Residence and Wait
// cover both classes of one transaction, Utilization is total server
// busy fraction. Unlike the FCFS recursion, the inter-population state
// is per-class, so cached FCFS curves cannot be extended into priority
// ones — use a full solve. When dst has capacity for customers results
// it is reused as the backing array.
func PrioritySingleServerMVA(think, hi, lo float64, customers int, dst []SingleServerResult) ([]SingleServerResult, error) {
	if customers < 1 {
		return nil, fmt.Errorf("%w: customers %d < 1", ErrInvalidInput, customers)
	}
	if think < 0 || hi < 0 || lo < 0 {
		return nil, fmt.Errorf("%w: think %g, high %g, or low %g negative", ErrInvalidInput, think, hi, lo)
	}
	var results []SingleServerResult
	if cap(dst) >= customers {
		results = dst[:customers]
	} else {
		results = make([]SingleServerResult, customers)
	}
	service := hi + lo
	// Per-class queue lengths and high-class utilization with n-1
	// customers.
	qh, ql, uh := 0.0, 0.0, 0.0
	for n := 1; n <= customers; n++ {
		rh := hi * (1 + qh)
		var rl float64
		if lo > 0 {
			den := 1 - uh
			if den < 1e-12 {
				den = 1e-12
			}
			rl = lo * (1 + ql) / den
		}
		r := rh + rl
		var x float64
		if think+r > 0 {
			x = float64(n) / (think + r)
		}
		qh = x * rh
		ql = x * rl
		uh = x * hi
		results[n-1] = SingleServerResult{
			Customers:   n,
			Residence:   r,
			Wait:        r - service,
			Throughput:  x,
			QueueLength: qh + ql,
			Utilization: x * service,
		}
	}
	return results, nil
}
