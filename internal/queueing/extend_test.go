package queueing

import "testing"

// TestExtendBitIdentical is the contract the evaluator's incremental
// kernel rests on: extending a prefix to N must reproduce the full solve
// for N bit for bit, not merely to within a tolerance. Both code paths
// execute the identical loop body, so any drift here means the shared
// recursion was forked by accident.
func TestExtendBitIdentical(t *testing.T) {
	const think, service = 19.37, 2.63
	const max = 257
	full, err := SingleServerMVA(think, service, max)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range []int{0, 1, 2, 7, 64, 255, 256, 257} {
		ext, err := ExtendSingleServerMVA(think, service, full[:split], max, nil)
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		if len(ext) != max {
			t.Fatalf("split %d: got %d results, want %d", split, len(ext), max)
		}
		for i := range ext {
			if ext[i] != full[i] {
				t.Fatalf("split %d: population %d differs:\n ext  %+v\n full %+v",
					split, i+1, ext[i], full[i])
			}
		}
	}
}

// TestExtendDoesNotAliasPrefix guards the concurrency contract: the
// returned slice must never share a backing array with the prefix, which
// may be a published cache entry other goroutines read lock-free.
func TestExtendDoesNotAliasPrefix(t *testing.T) {
	full, err := SingleServerMVA(10, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	prefix := full[:4]
	saved := prefix[3]
	ext, err := ExtendSingleServerMVA(10, 1, prefix, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext[3].Throughput = -1
	if prefix[3] != saved {
		t.Fatal("extension mutated the prefix backing array")
	}
}

// TestExtendReusesDst pins the zero-allocation path: a dst with enough
// capacity becomes the backing array of the result.
func TestExtendReusesDst(t *testing.T) {
	full, err := SingleServerMVA(10, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]SingleServerResult, 0, 32)
	ext, err := ExtendSingleServerMVA(10, 1, full, 16, dst)
	if err != nil {
		t.Fatal(err)
	}
	if &ext[0] != &dst[:1][0] {
		t.Fatal("dst with sufficient capacity was not reused")
	}
	want, err := SingleServerMVA(10, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if ext[i] != want[i] {
			t.Fatalf("population %d differs after dst reuse", i+1)
		}
	}
}

// TestExtendLongPrefixTruncates: a prefix longer than the request yields
// exactly the first customers entries.
func TestExtendLongPrefixTruncates(t *testing.T) {
	full, err := SingleServerMVA(10, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ExtendSingleServerMVA(10, 1, full, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 5 {
		t.Fatalf("got %d results, want 5", len(ext))
	}
	for i := range ext {
		if ext[i] != full[i] {
			t.Fatalf("population %d differs", i+1)
		}
	}
}

// TestExtendErrors: domain checks match SingleServerMVA's.
func TestExtendErrors(t *testing.T) {
	if _, err := ExtendSingleServerMVA(10, 1, nil, 0, nil); err == nil {
		t.Error("customers 0 accepted")
	}
	if _, err := ExtendSingleServerMVA(-1, 1, nil, 4, nil); err == nil {
		t.Error("negative think accepted")
	}
	if _, err := ExtendSingleServerMVA(10, -1, nil, 4, nil); err == nil {
		t.Error("negative service accepted")
	}
}
