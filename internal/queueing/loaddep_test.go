package queueing

import (
	"testing"
	"testing/quick"
)

func TestLoadDependentMatchesConstantRate(t *testing.T) {
	// With rate(k) = 1/service for all k, the system is the plain
	// machine-repairman; compare against SingleServerMVA exactly.
	think, service := 15.0, 4.0
	const n = 10
	constRate := func(int) float64 { return 1 / service }
	ld, err := LoadDependentMVA(think, constRate, n)
	if err != nil {
		t.Fatal(err)
	}
	mva, err := SingleServerMVA(think, service, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ld {
		if !almostEqual(ld[i].Throughput, mva[i].Throughput, 1e-9) {
			t.Errorf("n=%d: throughput %g != MVA %g", i+1, ld[i].Throughput, mva[i].Throughput)
		}
		if !almostEqual(ld[i].QueueLength, mva[i].QueueLength, 1e-9) {
			t.Errorf("n=%d: queue %g != MVA %g", i+1, ld[i].QueueLength, mva[i].QueueLength)
		}
	}
}

func TestLoadDependentScalableServerNeverQueues(t *testing.T) {
	// A delay-like server (rate proportional to k) behaves as an
	// infinite server: throughput = n/(think + 1/perCustomerRate).
	think, mu := 10.0, 0.5
	res, err := LoadDependentMVA(think, func(k int) float64 { return mu * float64(k) }, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		want := float64(r.Customers) / (think + 1/mu)
		if !almostEqual(r.Throughput, want, 1e-9) {
			t.Errorf("n=%d: throughput %g, want %g", r.Customers, r.Throughput, want)
		}
	}
}

func TestLoadDependentSaturation(t *testing.T) {
	// Capped rate: throughput can never exceed the cap.
	cap_ := 0.3
	res, err := LoadDependentMVA(1, func(k int) float64 { return cap_ }, 50)
	if err != nil {
		t.Fatal(err)
	}
	last := res[len(res)-1]
	if last.Throughput > cap_+1e-12 {
		t.Errorf("throughput %g exceeds service cap %g", last.Throughput, cap_)
	}
	if last.Throughput < cap_*0.99 {
		t.Errorf("50 customers at think=1 should saturate: %g", last.Throughput)
	}
}

func TestLoadDependentLittleLaw(t *testing.T) {
	f := func(thinkRaw, rateRaw uint8, nRaw uint8) bool {
		think := float64(thinkRaw%100) + 1
		base := float64(rateRaw%50)/100 + 0.01
		n := int(nRaw%12) + 1
		rate := func(k int) float64 { return base * (1 + float64(k)/4) }
		res, err := LoadDependentMVA(think, rate, n)
		if err != nil {
			return false
		}
		r := res[n-1]
		// Population conservation: thinkers + queued = n.
		thinkers := r.Throughput * think
		if !almostEqual(thinkers+r.QueueLength, float64(n), 1e-9) {
			return false
		}
		// Little at the server.
		if r.Throughput > 0 && !almostEqual(r.QueueLength, r.Throughput*r.Residence, 1e-9) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadDependentErrors(t *testing.T) {
	ok := func(int) float64 { return 1 }
	if _, err := LoadDependentMVA(1, ok, 0); err == nil {
		t.Error("want error for zero customers")
	}
	if _, err := LoadDependentMVA(0, ok, 2); err == nil {
		t.Error("want error for zero think")
	}
	if _, err := LoadDependentMVA(1, nil, 2); err == nil {
		t.Error("want error for nil rate")
	}
	if _, err := LoadDependentMVA(1, func(int) float64 { return 0 }, 2); err == nil {
		t.Error("want error for zero rate")
	}
	if _, err := LoadDependentMVA(1, func(int) float64 { return -1 }, 2); err == nil {
		t.Error("want error for negative rate")
	}
}
