package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSingleServerMVAOneCustomer(t *testing.T) {
	res, err := SingleServerMVA(9, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Wait != 0 {
		t.Errorf("one customer should never wait, got %g", r.Wait)
	}
	if !almostEqual(r.Residence, 3, 1e-12) {
		t.Errorf("residence = %g, want 3", r.Residence)
	}
	if !almostEqual(r.Throughput, 1.0/12.0, 1e-12) {
		t.Errorf("throughput = %g, want %g", r.Throughput, 1.0/12.0)
	}
	if !almostEqual(r.Utilization, 3.0/12.0, 1e-12) {
		t.Errorf("utilization = %g, want %g", r.Utilization, 0.25)
	}
}

func TestSingleServerMVAZeroService(t *testing.T) {
	res, err := SingleServerMVA(5, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Wait != 0 || r.Residence != 0 {
			t.Errorf("n=%d: zero service must give zero wait/residence, got %g/%g", r.Customers, r.Wait, r.Residence)
		}
		want := float64(r.Customers) / 5
		if !almostEqual(r.Throughput, want, 1e-12) {
			t.Errorf("n=%d: throughput = %g, want %g", r.Customers, r.Throughput, want)
		}
	}
}

func TestSingleServerMVAZeroThink(t *testing.T) {
	// With no think time and one server, the server saturates: with n
	// customers throughput is exactly 1/service for any n >= 1.
	res, err := SingleServerMVA(0, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !almostEqual(r.Throughput, 0.25, 1e-12) {
			t.Errorf("n=%d: throughput = %g, want 0.25", r.Customers, r.Throughput)
		}
		if !almostEqual(r.Utilization, 1, 1e-12) {
			t.Errorf("n=%d: utilization = %g, want 1", r.Customers, r.Utilization)
		}
	}
}

func TestSingleServerMVAAgainstClosedForm(t *testing.T) {
	// The machine-repairman model has a closed-form solution via the
	// Erlang-like recursion on state probabilities. Compare MVA's
	// utilization against a direct birth-death solution.
	think, service := 20.0, 5.0
	const n = 12
	res, err := SingleServerMVA(think, service, n)
	if err != nil {
		t.Fatal(err)
	}
	// Birth-death chain: state k = customers at server. Arrival rate
	// (n-k)/think, service rate 1/service. Solve stationary
	// distribution.
	p := make([]float64, n+1)
	p[0] = 1
	for k := 1; k <= n; k++ {
		p[k] = p[k-1] * (float64(n-k+1) / think) * service
	}
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	busy := (sum - p[0]) / sum
	x := busy / service
	if !almostEqual(res[n-1].Throughput, x, 1e-9) {
		t.Errorf("MVA throughput %g != birth-death %g", res[n-1].Throughput, x)
	}
	if !almostEqual(res[n-1].Utilization, busy, 1e-9) {
		t.Errorf("MVA utilization %g != birth-death %g", res[n-1].Utilization, busy)
	}
}

func TestSingleServerMVAMonotonicity(t *testing.T) {
	// Waiting time grows with population; throughput grows but is
	// capped by 1/service.
	res, err := SingleServerMVA(10, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Wait < res[i-1].Wait-1e-12 {
			t.Errorf("wait decreased from n=%d to n=%d: %g -> %g", i, i+1, res[i-1].Wait, res[i].Wait)
		}
		if res[i].Throughput < res[i-1].Throughput-1e-12 {
			t.Errorf("throughput decreased at n=%d", i+1)
		}
		if res[i].Throughput > 0.5+1e-12 {
			t.Errorf("throughput exceeds service capacity at n=%d: %g", i+1, res[i].Throughput)
		}
	}
}

func TestSingleServerMVAErrors(t *testing.T) {
	if _, err := SingleServerMVA(1, 1, 0); err == nil {
		t.Error("want error for zero customers")
	}
	if _, err := SingleServerMVA(-1, 1, 2); err == nil {
		t.Error("want error for negative think")
	}
	if _, err := SingleServerMVA(1, -1, 2); err == nil {
		t.Error("want error for negative service")
	}
}

func TestSingleServerMVAProperties(t *testing.T) {
	// Property: for any sane inputs, Little's law holds at the server
	// (Q = X * R) and total population is conserved
	// (X*think + Q = N).
	f := func(thinkRaw, serviceRaw uint16, nRaw uint8) bool {
		think := float64(thinkRaw%1000) / 10
		service := float64(serviceRaw%200)/10 + 0.1
		n := int(nRaw%20) + 1
		res, err := SingleServerMVA(think, service, n)
		if err != nil {
			return false
		}
		r := res[n-1]
		if !almostEqual(r.QueueLength, r.Throughput*r.Residence, 1e-9) {
			return false
		}
		pop := r.Throughput*think + r.QueueLength
		return almostEqual(pop, float64(n), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClosedMVAMatchesSingleServer(t *testing.T) {
	think, service := 12.0, 4.0
	single, err := SingleServerMVA(think, service, 10)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := ClosedMVA([]Station{
		{Name: "cpu", Demand: think, Delay: true},
		{Name: "bus", Demand: service},
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		if !almostEqual(single[i].Throughput, multi[i].Throughput, 1e-12) {
			t.Errorf("n=%d: single %g != multi %g", i+1, single[i].Throughput, multi[i].Throughput)
		}
		if !almostEqual(single[i].Residence, multi[i].Residence[1], 1e-12) {
			t.Errorf("n=%d: residence mismatch", i+1)
		}
	}
}

func TestClosedMVATwoQueues(t *testing.T) {
	// Balanced two-queue network: by symmetry both queues see equal
	// load; asymptotic throughput is 1/maxDemand.
	res, err := ClosedMVA([]Station{
		{Name: "a", Demand: 3},
		{Name: "b", Demand: 3},
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	last := res[len(res)-1]
	// Balanced closed network closed form: X(N) = N/((N+K-1)*D).
	want := 50.0 / (51.0 * 3.0)
	if !almostEqual(last.Throughput, want, 1e-9) {
		t.Errorf("throughput = %g, want %g (balanced closed form)", last.Throughput, want)
	}
	if !almostEqual(last.QueueLength[0], last.QueueLength[1], 1e-9) {
		t.Errorf("symmetric queues differ: %g vs %g", last.QueueLength[0], last.QueueLength[1])
	}
}

func TestClosedMVAErrors(t *testing.T) {
	if _, err := ClosedMVA(nil, 3); err == nil {
		t.Error("want error for no stations")
	}
	if _, err := ClosedMVA([]Station{{Demand: -1}}, 3); err == nil {
		t.Error("want error for negative demand")
	}
	if _, err := ClosedMVA([]Station{{Demand: 1}}, 0); err == nil {
		t.Error("want error for zero customers")
	}
}

func TestClosedMVAPopulationConservation(t *testing.T) {
	f := func(d1, d2, d3 uint16, nRaw uint8) bool {
		stations := []Station{
			{Name: "think", Demand: float64(d1%500) / 10, Delay: true},
			{Name: "q1", Demand: float64(d2%100)/10 + 0.01},
			{Name: "q2", Demand: float64(d3%100) / 10},
		}
		n := int(nRaw%16) + 1
		res, err := ClosedMVA(stations, n)
		if err != nil {
			return false
		}
		r := res[n-1]
		pop := 0.0
		for _, q := range r.QueueLength {
			pop += q
		}
		return almostEqual(pop, float64(n), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
