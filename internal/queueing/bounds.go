package queueing

import "fmt"

// Bounds are asymptotic (balanced-job style) bounds on a closed
// single-server system's throughput, useful both as sanity envelopes for
// the exact MVA solution and as quick design estimates without running
// the recursion.
type Bounds struct {
	// ThroughputLower and ThroughputUpper bracket X(n).
	ThroughputLower, ThroughputUpper float64
	// PowerUpper bounds n*U for the cache model's utilization
	// U = X (one instruction per customer cycle per processor).
	PowerUpper float64
	// Saturation is the asymptotic throughput cap 1/service.
	Saturation float64
	// KneePopulation is the machine size n* = (think+service)/service
	// where the optimistic bound meets the saturation cap — the
	// classic rule-of-thumb size beyond which adding processors stops
	// paying.
	KneePopulation float64
}

// SingleServerBounds computes throughput bounds for n customers with the
// given think time and service demand.
//
//	upper: X(n) <= min(n/(think+service), 1/service)
//	lower: X(n) >= n/(think + n*service)
func SingleServerBounds(think, service float64, n int) (Bounds, error) {
	if n < 1 {
		return Bounds{}, fmt.Errorf("%w: customers %d < 1", ErrInvalidInput, n)
	}
	if think < 0 || service <= 0 {
		return Bounds{}, fmt.Errorf("%w: think %g, service %g", ErrInvalidInput, think, service)
	}
	nf := float64(n)
	upper := nf / (think + service)
	if cap := 1 / service; cap < upper {
		upper = cap
	}
	return Bounds{
		ThroughputLower: nf / (think + nf*service),
		ThroughputUpper: upper,
		PowerUpper:      upper * (think + service),
		Saturation:      1 / service,
		KneePopulation:  (think + service) / service,
	}, nil
}
