package plot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func lineChart() Chart {
	return Chart{
		Title:  "t",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
	}
}

func TestRenderBasics(t *testing.T) {
	out, err := Render(lineChart())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"t\n", "y\n", "x", "* a", "+ b", "|", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing series markers")
	}
}

func TestRenderMarkerPositions(t *testing.T) {
	// A single flat series at y=5 must put markers on one row only.
	c := Chart{
		Width: 20, Height: 5,
		Series: []Series{{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}},
	}
	out, err := Render(c)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, "*") && strings.Contains(ln, "|") {
			rows++
		}
	}
	if rows != 1 {
		t.Errorf("flat series spans %d rows, want 1:\n%s", rows, out)
	}
}

func TestRenderDefaults(t *testing.T) {
	c := Chart{Series: lineChart().Series}
	out, err := Render(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty output")
	}
}

func TestRenderForcedYRange(t *testing.T) {
	c := lineChart()
	c.ForceYRange = true
	c.YMin, c.YMax = 0, 10
	out, err := Render(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "10") {
		t.Errorf("forced ymax missing from ticks:\n%s", out)
	}
	c.YMax = -1
	if _, err := Render(c); !errors.Is(err, ErrBadPlot) {
		t.Error("want error for inverted forced range")
	}
}

func TestRenderErrors(t *testing.T) {
	cases := []Chart{
		{},
		{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}},
		{Series: []Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{1}}}},
		{Series: []Series{{Name: "inf", X: []float64{1}, Y: []float64{math.Inf(1)}}}},
		{Width: 2, Height: 2, Series: []Series{{Name: "tiny", X: []float64{1}, Y: []float64{1}}}},
		{Series: []Series{{Name: "empty"}}},
	}
	for i, c := range cases {
		if _, err := Render(c); !errors.Is(err, ErrBadPlot) {
			t.Errorf("case %d: want ErrBadPlot, got %v", i, err)
		}
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := Chart{Series: []Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}}
	if _, err := Render(c); err != nil {
		t.Fatal(err)
	}
}

func TestRenderLogX(t *testing.T) {
	c := Chart{
		LogX:  true,
		Width: 40, Height: 8,
		Series: []Series{{Name: "d", X: []float64{1, 10, 100}, Y: []float64{1, 2, 3}}},
	}
	out, err := Render(c)
	if err != nil {
		t.Fatal(err)
	}
	// Axis labels must show the real values, not their logs.
	if !strings.Contains(out, "100") {
		t.Errorf("log axis label missing 100:\n%s", out)
	}
	// On a log scale 1, 10, 100 are equidistant: the middle marker
	// must sit near the center column.
	for _, ln := range strings.Split(out, "\n") {
		if i := strings.Index(ln, "*"); i >= 0 && strings.Count(ln, "*") == 1 {
			continue
		}
	}
	// Negative x rejected.
	c.Series[0].X[0] = 0
	if _, err := Render(c); !errors.Is(err, ErrBadPlot) {
		t.Error("want error for non-positive x on log scale")
	}
}

func TestRenderLogXPositions(t *testing.T) {
	// Three log-equidistant points must land on evenly spaced columns.
	c := Chart{
		LogX:  true,
		Width: 41, Height: 5,
		Series: []Series{{Name: "d", X: []float64{1, 10, 100}, Y: []float64{5, 5, 5}}},
	}
	out, err := Render(c)
	if err != nil {
		t.Fatal(err)
	}
	var cols []int
	for _, ln := range strings.Split(out, "\n") {
		bar := strings.Index(ln, "|")
		if bar < 0 {
			continue
		}
		for i := bar + 1; i < len(ln); i++ {
			if ln[i] == '*' {
				cols = append(cols, i-bar-1)
			}
		}
	}
	if len(cols) != 3 {
		t.Fatalf("found %d markers, want 3:\n%s", len(cols), out)
	}
	if cols[1]-cols[0] != cols[2]-cols[1] {
		t.Errorf("log-equidistant points not evenly spaced: %v", cols)
	}
}

func TestRenderManySeriesDistinctMarkers(t *testing.T) {
	var c Chart
	for i := 0; i < 12; i++ {
		c.Series = append(c.Series, Series{
			Name: strings.Repeat("s", i+1),
			X:    []float64{0, 1},
			Y:    []float64{float64(i), float64(i)},
		})
	}
	out, err := Render(c)
	if err != nil {
		t.Fatal(err)
	}
	// 12 series with 10 markers: wraps around, but every legend line
	// must carry a marker.
	legend := 0
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, " s") && !strings.Contains(ln, "|") {
			legend++
		}
	}
	if legend != 12 {
		t.Errorf("legend lines = %d, want 12", legend)
	}
}
