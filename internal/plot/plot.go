// Package plot renders multi-series line charts as plain text, so every
// figure of the paper can be regenerated offline with the standard
// library only. Charts are drawn on a character grid with per-series
// markers, automatic axis scaling, tick labels, and a legend.
package plot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrBadPlot reports an unrenderable chart.
var ErrBadPlot = errors.New("plot: invalid chart")

// Series is one named line on a chart.
type Series struct {
	// Name appears in the legend.
	Name string
	// X and Y are the data points; lengths must match.
	X, Y []float64
}

// Chart describes a text chart.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Width and Height are the plot-area dimensions in characters
	// (defaults 64x20).
	Width, Height int
	// Series are the lines to draw, each with a distinct marker.
	Series []Series
	// YMin / YMax force the y range when both are set (YMax > YMin);
	// otherwise the range is computed from the data and padded.
	YMin, YMax float64
	// ForceYRange enables YMin/YMax.
	ForceYRange bool
	// LogX plots x on a log10 scale; every x must be positive.
	LogX bool
}

// markers cycles across series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '~', '&', '$'}

// Render draws the chart to a string.
func Render(c Chart) (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("%w: no series", ErrBadPlot)
	}
	if c.Width == 0 {
		c.Width = 64
	}
	if c.Height == 0 {
		c.Height = 20
	}
	if c.Width < 8 || c.Height < 4 {
		return "", fmt.Errorf("%w: plot area %dx%d too small", ErrBadPlot, c.Width, c.Height)
	}
	xval := func(x float64) float64 { return x }
	if c.LogX {
		xval = math.Log10
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return "", fmt.Errorf("%w: series %q has %d x vs %d y", ErrBadPlot, s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.X[i], 0) || math.IsInf(s.Y[i], 0) {
				return "", fmt.Errorf("%w: series %q has non-finite point %d", ErrBadPlot, s.Name, i)
			}
			if c.LogX && s.X[i] <= 0 {
				return "", fmt.Errorf("%w: series %q has x[%d] = %g, log scale needs positive x", ErrBadPlot, s.Name, i, s.X[i])
			}
			xmin = math.Min(xmin, xval(s.X[i]))
			xmax = math.Max(xmax, xval(s.X[i]))
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return "", fmt.Errorf("%w: no data points", ErrBadPlot)
	}
	if c.ForceYRange {
		if c.YMax <= c.YMin {
			return "", fmt.Errorf("%w: forced y range [%g,%g]", ErrBadPlot, c.YMin, c.YMax)
		}
		ymin, ymax = c.YMin, c.YMax
	} else {
		if ymax == ymin {
			ymax = ymin + 1
		}
		pad := (ymax - ymin) * 0.05
		ymin -= pad
		ymax += pad
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	plotX := func(x float64) int {
		return int(math.Round((xval(x) - xmin) / (xmax - xmin) * float64(c.Width-1)))
	}
	plotY := func(y float64) int {
		// Row 0 is the top.
		return c.Height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(c.Height-1)))
	}
	clampRow := func(r int) int {
		if r < 0 {
			return 0
		}
		if r >= c.Height {
			return c.Height - 1
		}
		return r
	}

	for si, s := range c.Series {
		mark := markers[si%len(markers)]
		// Connect consecutive points with interpolated marks, then
		// stamp the data points themselves.
		for i := 1; i < len(s.X); i++ {
			x0, y0 := plotX(s.X[i-1]), plotY(s.Y[i-1])
			x1, y1 := plotX(s.X[i]), plotY(s.Y[i])
			steps := maxInt(absInt(x1-x0), absInt(y1-y0))
			for st := 0; st <= steps; st++ {
				var fx, fy int
				if steps == 0 {
					fx, fy = x0, y0
				} else {
					fx = x0 + (x1-x0)*st/steps
					fy = y0 + (y1-y0)*st/steps
				}
				row := clampRow(fy)
				if grid[row][fx] == ' ' {
					grid[row][fx] = '.'
				}
			}
		}
		for i := range s.X {
			grid[clampRow(plotY(s.Y[i]))][plotX(s.X[i])] = mark
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", c.YLabel)
	}
	yticks := map[int]float64{
		0:            ymax,
		c.Height / 2: (ymax + ymin) / 2,
		c.Height - 1: ymin,
	}
	for r := 0; r < c.Height; r++ {
		if v, ok := yticks[r]; ok {
			fmt.Fprintf(&b, "%9.3g |%s\n", v, string(grid[r]))
		} else {
			fmt.Fprintf(&b, "%9s |%s\n", "", string(grid[r]))
		}
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", c.Width))
	xlo, xhi := xmin, xmax
	if c.LogX {
		xlo, xhi = math.Pow(10, xmin), math.Pow(10, xmax)
	}
	left := fmt.Sprintf("%.3g", xlo)
	right := fmt.Sprintf("%.3g", xhi)
	gap := c.Width - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%9s  %s%s%s\n", "", left, strings.Repeat(" ", gap), right)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%9s  %s\n", "", center(c.XLabel, c.Width))
	}
	b.WriteString("\n")
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%9s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String(), nil
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	pad := (width - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
