// Package tracegen synthesizes multiprocessor address traces with
// controllable workload characteristics. It substitutes for the ATUM-2
// traces (POPS, THOR, PERO) the paper used for validation, which are
// proprietary and lost: what the validation experiment needs is an
// interleaved multiprocessor reference stream whose measured Table 2
// parameters fall in the published Table 7 ranges, and the generator
// produces that by construction.
//
// The workload model per processor:
//
//   - An instruction stream walks sequentially through a loop region,
//     occasionally jumping to a fresh region (cold code -> instruction
//     misses at roughly JumpProb * LoopBlocks per instruction).
//   - Private data references split between a small hot working set
//     (cache-resident after warm-up) and a large cold pool (misses), so
//     the data miss rate tracks ColdProb.
//   - Shared references happen in critical-section episodes: the
//     processor claims a shared region, makes EpisodeLen references over
//     its blocks (stores with probability WriteFrac), optionally emits
//     flush records for the region's blocks, then moves on. Contention
//     for the same regions by other processors creates true sharing, and
//     EpisodeLen/BlocksPerRegion sets the achievable apl.
package tracegen

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"swcc/internal/trace"
)

// ErrBadConfig reports an invalid generator configuration.
var ErrBadConfig = errors.New("tracegen: invalid config")

// Config controls trace synthesis. Zero fields are filled with defaults
// by Generate; see DefaultConfig for the baseline.
type Config struct {
	// Name labels the workload (presets: pops, thor, pero, pero8).
	Name string
	// NCPU is the number of processors (1..32).
	NCPU int
	// InstrPerCPU is the number of instructions (ifetch records) each
	// processor executes.
	InstrPerCPU int
	// Seed makes generation deterministic.
	Seed uint64

	// LS is the probability an instruction also issues a data
	// reference.
	LS float64
	// SharedFrac is the probability a data reference targets shared
	// data.
	SharedFrac float64
	// WriteFrac is the probability a data reference is a store.
	WriteFrac float64

	// HotBlocks is the per-CPU hot private working set, in blocks.
	HotBlocks int
	// ColdBlocks is the per-CPU cold private pool, in blocks.
	ColdBlocks int
	// ColdProb is the probability a private reference goes to the
	// cold pool (approximately the private data miss rate).
	ColdProb float64

	// LoopBlocks is the instruction loop body size, in blocks.
	LoopBlocks int
	// CodeBlocks is the per-CPU code region size, in blocks.
	CodeBlocks int
	// JumpProb is the per-instruction probability of jumping to a new
	// loop region.
	JumpProb float64

	// SharedRegions is the number of distinct shared regions.
	SharedRegions int
	// BlocksPerRegion is the size of each shared region, in blocks.
	BlocksPerRegion int
	// EpisodeLen is the number of shared references a processor makes
	// to a region before releasing it.
	EpisodeLen int
	// ReadOnlyEpisodeFrac is the probability an episode only reads its
	// region (e.g. scanning a shared table). Read-only episodes leave
	// no dirty copies behind, raising the measured oclean.
	ReadOnlyEpisodeFrac float64
	// PhaseLen, when positive, is the mean instructions per workload
	// phase: the processor alternates between compute phases (shared
	// references suppressed to 20% of SharedFrac) and communication
	// phases (boosted to 180%), modeling the bursty phase behavior of
	// real parallel programs. The long-run shared fraction stays
	// approximately SharedFrac. 0 disables phases.
	PhaseLen int
	// EmitFlush adds flush records for each region block at episode
	// end, enabling Software-Flush replay.
	EmitFlush bool

	// BlockSize is the cache block size in bytes (power of two).
	BlockSize int
}

// DefaultConfig returns a 4-processor middle-of-the-road workload.
func DefaultConfig() Config {
	return Config{
		Name:            "default",
		NCPU:            4,
		InstrPerCPU:     100_000,
		Seed:            1,
		LS:              0.3,
		SharedFrac:      0.25,
		WriteFrac:       0.25,
		HotBlocks:       256,
		ColdBlocks:      1 << 16,
		ColdProb:        0.014,
		LoopBlocks:      32,
		CodeBlocks:      1 << 14,
		JumpProb:        0.0001,
		SharedRegions:   64,
		BlocksPerRegion: 4,
		EpisodeLen:      24,
		EmitFlush:       true,
		BlockSize:       16,
	}
}

// validate checks the configuration domain.
func (c *Config) validate() error {
	switch {
	case c.NCPU < 1 || c.NCPU > 32:
		return fmt.Errorf("%w: ncpu %d", ErrBadConfig, c.NCPU)
	case c.InstrPerCPU < 1:
		return fmt.Errorf("%w: instrPerCPU %d", ErrBadConfig, c.InstrPerCPU)
	case c.LS < 0 || c.LS > 1:
		return fmt.Errorf("%w: ls %g", ErrBadConfig, c.LS)
	case c.SharedFrac < 0 || c.SharedFrac > 1:
		return fmt.Errorf("%w: sharedFrac %g", ErrBadConfig, c.SharedFrac)
	case c.WriteFrac < 0 || c.WriteFrac > 1:
		return fmt.Errorf("%w: writeFrac %g", ErrBadConfig, c.WriteFrac)
	case c.ColdProb < 0 || c.ColdProb > 1:
		return fmt.Errorf("%w: coldProb %g", ErrBadConfig, c.ColdProb)
	case c.JumpProb < 0 || c.JumpProb > 1:
		return fmt.Errorf("%w: jumpProb %g", ErrBadConfig, c.JumpProb)
	case c.HotBlocks < 1 || c.ColdBlocks < 1 || c.LoopBlocks < 1 || c.CodeBlocks < c.LoopBlocks:
		return fmt.Errorf("%w: working-set sizes", ErrBadConfig)
	case c.SharedRegions < 1 || c.BlocksPerRegion < 1 || c.EpisodeLen < 1:
		return fmt.Errorf("%w: sharing shape", ErrBadConfig)
	case c.ReadOnlyEpisodeFrac < 0 || c.ReadOnlyEpisodeFrac > 1:
		return fmt.Errorf("%w: readOnlyEpisodeFrac %g", ErrBadConfig, c.ReadOnlyEpisodeFrac)
	case c.PhaseLen < 0:
		return fmt.Errorf("%w: phaseLen %d", ErrBadConfig, c.PhaseLen)
	case c.PhaseLen > 0 && c.SharedFrac*1.8 > 1:
		return fmt.Errorf("%w: phases with sharedFrac %g would exceed 1", ErrBadConfig, c.SharedFrac)
	case c.BlockSize < 4 || c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("%w: block size %d", ErrBadConfig, c.BlockSize)
	}
	return nil
}

// Address-space layout: disjoint gigabyte-scale arenas keyed by CPU so
// private regions never collide across processors, plus one shared arena.
const (
	codeArena    = uint64(1) << 36
	hotArena     = uint64(2) << 36
	coldArena    = uint64(3) << 36
	sharedArena  = uint64(4) << 36
	perCPUStride = uint64(1) << 32
)

type cpuState struct {
	rng *rand.Rand

	pc        uint64 // current instruction address
	loopStart uint64 // current loop region base

	region      int  // current shared region index, -1 if none
	episodeRem  int  // shared references left in this episode
	episodeRead bool // current episode is read-only
	sharePhase  bool // currently in a communication phase
}

// Generate synthesizes the trace described by cfg. Per-CPU streams are
// generated with independent deterministic RNGs and interleaved
// round-robin, mirroring multiprocessor tracer output.
func Generate(cfg Config) (*trace.Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	streams := make([][]trace.Ref, cfg.NCPU)
	for cpu := 0; cpu < cfg.NCPU; cpu++ {
		streams[cpu] = generateCPU(cfg, cpu)
	}
	t := trace.Interleave(streams)
	t.NCPU = cfg.NCPU
	return t, nil
}

func generateCPU(cfg Config, cpu int) []trace.Ref {
	st := &cpuState{
		rng:    rand.New(rand.NewPCG(cfg.Seed, uint64(cpu)+1)),
		region: -1,
	}
	bs := uint64(cfg.BlockSize)
	codeBase := codeArena + uint64(cpu)*perCPUStride
	hotBase := hotArena + uint64(cpu)*perCPUStride
	coldBase := coldArena + uint64(cpu)*perCPUStride
	st.loopStart = codeBase
	st.pc = st.loopStart

	// Rough capacity guess: 1 ifetch + ls data refs per instruction,
	// plus flush records.
	capEst := cfg.InstrPerCPU + int(float64(cfg.InstrPerCPU)*cfg.LS) + 16
	refs := make([]trace.Ref, 0, capEst)
	c8 := uint8(cpu)

	for i := 0; i < cfg.InstrPerCPU; i++ {
		// Instruction fetch: sequential walk of the loop region with
		// occasional jumps to fresh code.
		refs = append(refs, trace.Ref{CPU: c8, Kind: trace.IFetch, Addr: st.pc})
		st.pc += 4
		loopBytes := uint64(cfg.LoopBlocks) * bs
		if st.pc >= st.loopStart+loopBytes {
			st.pc = st.loopStart
		}
		if st.rng.Float64() < cfg.JumpProb {
			maxStart := cfg.CodeBlocks - cfg.LoopBlocks
			st.loopStart = codeBase + uint64(st.rng.IntN(maxStart+1))*bs
			st.pc = st.loopStart
		}

		if cfg.PhaseLen > 0 && st.rng.Float64() < 1/float64(cfg.PhaseLen) {
			st.sharePhase = !st.sharePhase
		}

		if st.rng.Float64() >= cfg.LS {
			continue
		}
		// Data reference.
		sharedFrac := cfg.SharedFrac
		if cfg.PhaseLen > 0 {
			if st.sharePhase {
				sharedFrac *= 1.8
			} else {
				sharedFrac *= 0.2
			}
		}
		if st.rng.Float64() < sharedFrac {
			refs = st.sharedRef(cfg, c8, refs)
			continue
		}
		// Private reference.
		var addr uint64
		if st.rng.Float64() < cfg.ColdProb {
			addr = coldBase + uint64(st.rng.IntN(cfg.ColdBlocks))*bs
		} else {
			addr = hotBase + uint64(st.rng.IntN(cfg.HotBlocks))*bs
		}
		addr += uint64(st.rng.IntN(cfg.BlockSize/4)) * 4
		kind := trace.Read
		if st.rng.Float64() < cfg.WriteFrac {
			kind = trace.Write
		}
		refs = append(refs, trace.Ref{CPU: c8, Kind: kind, Addr: addr})
	}
	// Close any open episode so flush accounting balances.
	if st.region >= 0 && cfg.EmitFlush {
		refs = st.flushRegion(cfg, c8, refs)
	}
	return refs
}

// sharedRef emits one shared data reference, managing episode lifecycle.
func (st *cpuState) sharedRef(cfg Config, cpu uint8, refs []trace.Ref) []trace.Ref {
	if st.region < 0 || st.episodeRem == 0 {
		if st.region >= 0 && cfg.EmitFlush {
			refs = st.flushRegion(cfg, cpu, refs)
		}
		st.region = st.rng.IntN(cfg.SharedRegions)
		st.episodeRem = cfg.EpisodeLen
		st.episodeRead = st.rng.Float64() < cfg.ReadOnlyEpisodeFrac
	}
	bs := uint64(cfg.BlockSize)
	regionBase := sharedArena + uint64(st.region)*uint64(cfg.BlocksPerRegion)*bs
	addr := regionBase + uint64(st.rng.IntN(cfg.BlocksPerRegion))*bs
	addr += uint64(st.rng.IntN(cfg.BlockSize/4)) * 4
	kind := trace.Read
	if !st.episodeRead && st.rng.Float64() < cfg.WriteFrac {
		kind = trace.Write
	}
	st.episodeRem--
	return append(refs, trace.Ref{CPU: cpu, Kind: kind, Addr: addr, Shared: true})
}

// flushRegion emits one flush record per block of the current region.
func (st *cpuState) flushRegion(cfg Config, cpu uint8, refs []trace.Ref) []trace.Ref {
	bs := uint64(cfg.BlockSize)
	regionBase := sharedArena + uint64(st.region)*uint64(cfg.BlocksPerRegion)*bs
	for b := 0; b < cfg.BlocksPerRegion; b++ {
		refs = append(refs, trace.Ref{
			CPU: cpu, Kind: trace.Flush,
			Addr: regionBase + uint64(b)*bs, Shared: true,
		})
	}
	return refs
}
