package tracegen

import (
	"errors"
	"math"
	"testing"

	"swcc/internal/trace"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.InstrPerCPU = 20_000
	return cfg
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NCPU != 4 {
		t.Errorf("ncpu = %d", tr.NCPU)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Refs) != len(b.Refs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Refs), len(b.Refs))
	}
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
	cfg := smallConfig()
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := len(c.Refs) == len(a.Refs)
	if same {
		diff := 0
		for i := range a.Refs {
			if a.Refs[i] != c.Refs[i] {
				diff++
			}
		}
		if diff == 0 {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateInstructionCount(t *testing.T) {
	cfg := smallConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := trace.ComputeStats(tr, cfg.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.NCPU * cfg.InstrPerCPU
	if s.ByKind[trace.IFetch] != want {
		t.Errorf("ifetches = %d, want %d", s.ByKind[trace.IFetch], want)
	}
}

func TestGenerateHitsTargetFractions(t *testing.T) {
	cfg := smallConfig()
	cfg.InstrPerCPU = 100_000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := trace.ComputeStats(tr, cfg.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if ls := s.LoadStoreFraction(); math.Abs(ls-cfg.LS) > 0.01 {
		t.Errorf("measured ls = %g, target %g", ls, cfg.LS)
	}
	if shd := s.SharedFraction(); math.Abs(shd-cfg.SharedFrac) > 0.02 {
		t.Errorf("measured shd = %g, target %g", shd, cfg.SharedFrac)
	}
	if wr := s.WriteFraction(); math.Abs(wr-cfg.WriteFrac) > 0.02 {
		t.Errorf("measured wr = %g, target %g", wr, cfg.WriteFrac)
	}
}

func TestGenerateAddressArenasDisjoint(t *testing.T) {
	cfg := smallConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Refs {
		arena := r.Addr >> 36
		switch {
		case r.Kind == trace.IFetch && arena != 1:
			t.Fatalf("ref %d: ifetch outside code arena: %x", i, r.Addr)
		case r.Shared && arena != 4:
			t.Fatalf("ref %d: shared ref outside shared arena: %x", i, r.Addr)
		case r.Kind.IsData() && !r.Shared && arena != 2 && arena != 3:
			t.Fatalf("ref %d: private ref outside private arenas: %x", i, r.Addr)
		}
	}
}

func TestGeneratePrivateArenasPerCPU(t *testing.T) {
	// No two CPUs may share a private (code/hot/cold) address.
	cfg := smallConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	owner := map[uint64]uint8{}
	for _, r := range tr.Refs {
		if r.Shared {
			continue
		}
		if prev, ok := owner[r.Addr]; ok && prev != r.CPU {
			t.Fatalf("private address %x used by CPUs %d and %d", r.Addr, prev, r.CPU)
		}
		owner[r.Addr] = r.CPU
	}
}

func TestGenerateTrueSharingExists(t *testing.T) {
	// At default sharing levels, some shared block must be written by
	// one CPU and referenced by another — otherwise the trace cannot
	// exercise coherence at all.
	cfg := smallConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	writers := map[uint64]map[uint8]bool{}
	users := map[uint64]map[uint8]bool{}
	bs := uint64(cfg.BlockSize)
	for _, r := range tr.Refs {
		if !r.Shared || !r.Kind.IsData() {
			continue
		}
		blk := r.Addr / bs
		if users[blk] == nil {
			users[blk] = map[uint8]bool{}
		}
		users[blk][r.CPU] = true
		if r.Kind == trace.Write {
			if writers[blk] == nil {
				writers[blk] = map[uint8]bool{}
			}
			writers[blk][r.CPU] = true
		}
	}
	shared := 0
	for blk, w := range writers {
		if len(w) >= 1 && len(users[blk]) >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no write-shared blocks in generated trace")
	}
}

func TestGenerateFlushBalance(t *testing.T) {
	// With EmitFlush, every episode ends in exactly BlocksPerRegion
	// flushes, so flush count = episodes * BlocksPerRegion and every
	// flush addresses the shared arena.
	cfg := smallConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flushes := 0
	for _, r := range tr.Refs {
		if r.Kind == trace.Flush {
			flushes++
			if r.Addr>>36 != 4 {
				t.Fatalf("flush outside shared arena: %x", r.Addr)
			}
			if r.Addr%uint64(cfg.BlockSize) != 0 {
				t.Fatalf("flush not block-aligned: %x", r.Addr)
			}
		}
	}
	if flushes == 0 {
		t.Fatal("no flush records generated")
	}
	if flushes%cfg.BlocksPerRegion != 0 {
		t.Errorf("flush count %d not a multiple of region size %d", flushes, cfg.BlocksPerRegion)
	}
}

func TestGenerateNoFlushMode(t *testing.T) {
	cfg := smallConfig()
	cfg.EmitFlush = false
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Refs {
		if r.Kind == trace.Flush {
			t.Fatal("flush record despite EmitFlush=false")
		}
	}
}

func TestGeneratePhases(t *testing.T) {
	cfg := smallConfig()
	cfg.InstrPerCPU = 100_000
	cfg.PhaseLen = 2000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := trace.ComputeStats(tr, cfg.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	// Long-run shared fraction stays near the target...
	if shd := s.SharedFraction(); math.Abs(shd-cfg.SharedFrac) > 0.04 {
		t.Errorf("phased shd = %g, target %g", shd, cfg.SharedFrac)
	}
	// ...but sharing is bursty: windowed shared fractions must vary
	// far more than in the phase-free trace.
	burstiness := func(tr *trace.Trace) float64 {
		const window = 4000
		var varsum, mean float64
		var fractions []float64
		shared, data := 0, 0
		for _, r := range tr.Refs {
			if !r.Kind.IsData() {
				continue
			}
			data++
			if r.Shared {
				shared++
			}
			if data == window {
				fractions = append(fractions, float64(shared)/float64(data))
				shared, data = 0, 0
			}
		}
		for _, f := range fractions {
			mean += f
		}
		mean /= float64(len(fractions))
		for _, f := range fractions {
			varsum += (f - mean) * (f - mean)
		}
		return varsum / float64(len(fractions))
	}
	phased := burstiness(tr)
	cfg.PhaseLen = 0
	flat, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if phased < 3*burstiness(flat) {
		t.Errorf("phased variance %g not clearly above flat %g", phased, burstiness(flat))
	}
}

func TestGenerateBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.NCPU = 0 },
		func(c *Config) { c.NCPU = 33 },
		func(c *Config) { c.InstrPerCPU = 0 },
		func(c *Config) { c.LS = 1.5 },
		func(c *Config) { c.SharedFrac = -0.1 },
		func(c *Config) { c.WriteFrac = 2 },
		func(c *Config) { c.ColdProb = -1 },
		func(c *Config) { c.JumpProb = 1.5 },
		func(c *Config) { c.HotBlocks = 0 },
		func(c *Config) { c.CodeBlocks = 1; c.LoopBlocks = 2 },
		func(c *Config) { c.SharedRegions = 0 },
		func(c *Config) { c.EpisodeLen = 0 },
		func(c *Config) { c.BlockSize = 24 },
		func(c *Config) { c.BlockSize = 2 },
		func(c *Config) { c.PhaseLen = -1 },
		func(c *Config) { c.PhaseLen = 100; c.SharedFrac = 0.7 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := Generate(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("mutation %d: want ErrBadConfig, got %v", i, err)
		}
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) != 6 {
		t.Fatalf("got %d presets, want 6: %v", len(names), names)
	}
	for _, name := range names {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Name != name {
			t.Errorf("preset %q has name %q", name, cfg.Name)
		}
		cfg.InstrPerCPU = 5000
		if _, err := Generate(cfg); err != nil {
			t.Errorf("preset %q does not generate: %v", name, err)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("want error for unknown preset")
	}
	if p, _ := Preset("pero8"); p.NCPU != 8 {
		t.Errorf("pero8 ncpu = %d, want 8", p.NCPU)
	}
}

func TestPresetSharingOrdering(t *testing.T) {
	// timeshare < message < thor < pops < pero in sharing intensity.
	order := []string{"timeshare", "message", "thor", "pops", "pero"}
	prev := -1.0
	for _, name := range order {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.SharedFrac <= prev {
			t.Errorf("%s sharing %g not above previous %g", name, cfg.SharedFrac, prev)
		}
		prev = cfg.SharedFrac
	}
}
