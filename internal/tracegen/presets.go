package tracegen

import (
	"fmt"
	"sort"
)

// Presets emulate the character of the paper's validation traces. The
// real ATUM-2 traces are unavailable; these configurations are tuned so
// the *measured* Table 2 parameters land inside the Table 7 ranges. The
// paper describes POPS (parallel OPS5 production system), THOR (parallel
// logic simulator), and PERO (parallel rule-based system); we keep the
// names as labels for three distinct operating points plus the
// 8-processor PERO variant:
//
//	pops  — moderate sharing, moderate write fraction
//	thor  — light sharing, large private working sets
//	pero  — heavier sharing, smaller episodes (lower apl)
//	pero8 — pero on 8 processors
var presets = map[string]Config{
	"pops": {
		Name: "pops", NCPU: 4, InstrPerCPU: 120_000, Seed: 0x9095,
		LS: 0.30, SharedFrac: 0.25, WriteFrac: 0.42,
		HotBlocks: 256, ColdBlocks: 1 << 16, ColdProb: 0.020,
		LoopBlocks: 48, CodeBlocks: 1 << 14, JumpProb: 0.00006,
		SharedRegions: 48, BlocksPerRegion: 4, EpisodeLen: 32,
		ReadOnlyEpisodeFrac: 0.40,
		EmitFlush:           true, BlockSize: 16,
	},
	"thor": {
		Name: "thor", NCPU: 4, InstrPerCPU: 120_000, Seed: 0x7409,
		LS: 0.24, SharedFrac: 0.10, WriteFrac: 0.30,
		HotBlocks: 384, ColdBlocks: 1 << 17, ColdProb: 0.014,
		LoopBlocks: 64, CodeBlocks: 1 << 15, JumpProb: 0.00004,
		SharedRegions: 48, BlocksPerRegion: 4, EpisodeLen: 48,
		ReadOnlyEpisodeFrac: 0.50,
		EmitFlush:           true, BlockSize: 16,
	},
	"pero": {
		Name: "pero", NCPU: 4, InstrPerCPU: 120_000, Seed: 0x9E20,
		LS: 0.36, SharedFrac: 0.38, WriteFrac: 0.45,
		HotBlocks: 256, ColdBlocks: 1 << 16, ColdProb: 0.028,
		LoopBlocks: 32, CodeBlocks: 1 << 14, JumpProb: 0.00008,
		SharedRegions: 24, BlocksPerRegion: 4, EpisodeLen: 16,
		ReadOnlyEpisodeFrac: 0.30,
		EmitFlush:           true, BlockSize: 16,
	},
	// The two low-sharing environments of Section 5.2, where the paper
	// says even No-Cache is viable: a time-sharing machine running
	// unrelated jobs, and a message-passing system whose only shared
	// memory is the message buffers.
	"timeshare": {
		Name: "timeshare", NCPU: 4, InstrPerCPU: 120_000, Seed: 0x71E5,
		LS: 0.30, SharedFrac: 0.01, WriteFrac: 0.30,
		HotBlocks: 320, ColdBlocks: 1 << 16, ColdProb: 0.018,
		LoopBlocks: 48, CodeBlocks: 1 << 14, JumpProb: 0.00006,
		SharedRegions: 8, BlocksPerRegion: 4, EpisodeLen: 16,
		ReadOnlyEpisodeFrac: 0.50,
		EmitFlush:           true, BlockSize: 16,
	},
	"message": {
		Name: "message", NCPU: 4, InstrPerCPU: 120_000, Seed: 0x4E57,
		LS: 0.28, SharedFrac: 0.06, WriteFrac: 0.45,
		HotBlocks: 320, ColdBlocks: 1 << 16, ColdProb: 0.016,
		LoopBlocks: 40, CodeBlocks: 1 << 14, JumpProb: 0.00006,
		SharedRegions: 16, BlocksPerRegion: 8, EpisodeLen: 24,
		ReadOnlyEpisodeFrac: 0.20,
		EmitFlush:           true, BlockSize: 16,
	},
	"pero8": {
		Name: "pero8", NCPU: 8, InstrPerCPU: 80_000, Seed: 0x9E28,
		LS: 0.36, SharedFrac: 0.38, WriteFrac: 0.45,
		HotBlocks: 256, ColdBlocks: 1 << 16, ColdProb: 0.028,
		LoopBlocks: 32, CodeBlocks: 1 << 14, JumpProb: 0.00008,
		SharedRegions: 24, BlocksPerRegion: 4, EpisodeLen: 16,
		ReadOnlyEpisodeFrac: 0.30,
		EmitFlush:           true, BlockSize: 16,
	},
}

// Preset returns the named workload configuration.
func Preset(name string) (Config, error) {
	cfg, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("%w: unknown preset %q (have %v)", ErrBadConfig, name, PresetNames())
	}
	return cfg, nil
}

// PresetNames lists the available presets in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
